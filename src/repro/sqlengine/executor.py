"""Plan execution and full statement evaluation.

:class:`Engine` is the public façade: it parses, plans, optimizes and runs
statements against a :class:`~repro.sqlengine.database.Database`.

The access plan (scans/joins/filters) produces a row stream; the executor
then applies the "upper" query semantics — grouping and aggregation,
HAVING, projection with star expansion, DISTINCT, ORDER BY and LIMIT —
directly from the AST, because those need expression-level evaluation.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from repro.errors import (
    ExecutionError,
    PlanError,
    SchemaError,
    SqlSyntaxError,
)
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.aggregates import AGGREGATE_NAMES, AGGREGATES
from repro.sqlengine.columnar import (
    Batch,
    compile_expr,
    install_kernels,
    join_key as _join_key,
)
from repro.sqlengine.database import Database
from repro.sqlengine.expressions import Env, Evaluator, Scope
from repro.sqlengine.optimizer import install_index_hints, optimize
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.plancache import PlanCache
from repro.sqlengine.planner import (
    FilterNode,
    HashJoinNode,
    JoinNode,
    PlanNode,
    ReorderNode,
    ScanNode,
    build_plan,
    qualify_expr,
    split_conjuncts,
)
from repro.sqlengine.result import ResultSet
from repro.sqlengine.schema import Column, ForeignKey, TableSchema
from repro.sqlengine.types import SqlType, sort_key
from repro.storage.transactions import TransactionManager

_TYPE_NAMES = {
    "int": SqlType.INT,
    "integer": SqlType.INT,
    "float": SqlType.FLOAT,
    "real": SqlType.FLOAT,
    "double": SqlType.FLOAT,
    "text": SqlType.TEXT,
    "varchar": SqlType.TEXT,
    "char": SqlType.TEXT,
    "string": SqlType.TEXT,
    "bool": SqlType.BOOL,
    "boolean": SqlType.BOOL,
}


class _AggregateEvaluator(Evaluator):
    """Evaluates expressions over a *group* of rows.

    Aggregate calls compute over all group rows; everything else resolves
    against the group's representative (first) row, matching the permissive
    semantics of engines like MySQL for non-grouped columns.
    """

    def __init__(self, base: Evaluator, group_rows: list[Env]) -> None:
        super().__init__(base._run_subquery)
        self._base = base
        self._group_rows = group_rows

    def evaluate(self, expr: ast.Expr, env: Env) -> Any:
        if isinstance(expr, ast.FunctionCall) and expr.name.lower() in AGGREGATE_NAMES:
            return self._eval_aggregate(expr)
        return super().evaluate(expr, env)

    def _eval_aggregate(self, expr: ast.FunctionCall) -> Any:
        name = expr.name.lower()
        if len(expr.args) == 1 and isinstance(expr.args[0], ast.Star):
            if name != "count":
                raise ExecutionError(f"{expr.name}(*) is not valid")
            return len(self._group_rows)
        if len(expr.args) != 1:
            raise ExecutionError(f"{expr.name}() takes exactly one argument")
        arg = expr.args[0]
        values = [self._base.evaluate(arg, row_env) for row_env in self._group_rows]
        return AGGREGATES[name](values, distinct=expr.distinct)


class Engine:
    """Executes SQL statements against an in-memory database.

    >>> from repro.sqlengine.database import Database
    >>> engine = Engine(Database())
    >>> engine.execute("SELECT 1 + 1 AS two").scalar()
    2
    """

    def __init__(
        self,
        database: Database,
        use_optimizer: bool = True,
        use_indexes: bool = True,
        use_plan_cache: bool = True,
        plan_cache_size: int = 256,
        max_cached_result_rows: int = 10_000,
        use_columnar: bool = True,
    ) -> None:
        self.database = database
        self.use_optimizer = use_optimizer
        self.use_indexes = use_indexes
        #: Attach columnar batch kernels to covered plan nodes; uncovered
        #: constructs fall back to the row interpreter per node.
        self.use_columnar = use_columnar
        self.plan_cache = (
            PlanCache(plan_cache_size, max_cached_result_rows)
            if use_plan_cache
            else None
        )
        self._evaluator = Evaluator(self._run_subquery)
        #: Transaction scope: BEGIN/COMMIT/ROLLBACK routing plus the WAL
        #: record hook for committed DML/DDL (a no-op until a
        #: StorageManager attaches itself as the sink).
        self.transactions = TransactionManager(database)
        #: Per-thread stack of pinned read sources (database snapshots):
        #: concurrent readers share one Engine, each executing against its
        #: own snapshot, so the current source must be thread-local.
        self._tls = threading.local()

    def _source(self) -> Any:
        """The current read source: a pinned snapshot, or the live database."""
        stack = getattr(self._tls, "sources", None)
        return stack[-1] if stack else self.database

    # -- public API ------------------------------------------------------------

    def execute(
        self, statement: str | ast.Statement, snapshot: Any = None
    ) -> ResultSet:
        """Parse (if needed) and execute one statement.

        With ``snapshot`` (a :class:`~repro.sqlengine.snapshot.DatabaseSnapshot`),
        the statement must be a SELECT and every table read — including
        subqueries — resolves against the pinned snapshot instead of the
        live database, so the result is consistent with one version even
        while writers commit concurrently.  Plan-cache entries produced
        this way are stamped with the snapshot's table versions, so they
        can never serve rows across versions.
        """
        if snapshot is not None:
            return self._execute_pinned(statement, snapshot)
        if isinstance(statement, str):
            stmt = self._parse_cached(statement)
            if isinstance(stmt, ast.Select) and self.plan_cache is not None:
                # Reuse the raw text as the cache key so the statement and
                # its plan/result share one LRU entry and the hot path
                # avoids re-rendering the AST.
                return self._execute_select(stmt, cache_key=statement)
        else:
            stmt = statement
        if isinstance(stmt, ast.Select):
            return self._execute_select(stmt)
        if isinstance(stmt, ast.Explain):
            return self._execute_explain(stmt)
        if isinstance(stmt, ast.BeginTransaction):
            self.transactions.begin()
            return ResultSet(["status"], [("BEGIN",)])
        if isinstance(stmt, ast.CommitTransaction):
            self.transactions.commit()
            return ResultSet(["status"], [("COMMIT",)])
        if isinstance(stmt, ast.RollbackTransaction):
            self.transactions.rollback()
            return ResultSet(["status"], [("ROLLBACK",)])
        text = statement if isinstance(statement, str) else None
        if isinstance(stmt, ast.CreateTable):
            return self._execute_logged(stmt, text, self._execute_create)
        if isinstance(stmt, ast.Insert):
            return self._execute_logged(stmt, text, self._execute_insert)
        if isinstance(stmt, ast.Delete):
            return self._execute_logged(stmt, text, self._execute_delete)
        if isinstance(stmt, ast.Update):
            return self._execute_logged(stmt, text, self._execute_update)
        raise SqlSyntaxError(f"unsupported statement {type(stmt).__name__}")

    def _execute_logged(self, stmt: Any, text: str | None, runner: Any) -> ResultSet:
        """Run one DML/DDL statement and hand its SQL text to the
        transaction scope (WAL buffering, or an autocommit append).

        Mutation and record share one database statement scope, so a
        checkpoint rotation — which also holds the scope — can never
        separate a mutation from its WAL record; a due checkpoint then
        runs in ``after_statement`` off the lock.
        """
        with self.database.statement_scope():
            result = runner(stmt)
            self.transactions.record(text if text is not None else stmt.render())
        self.transactions.after_statement()
        return result

    def _execute_pinned(
        self, statement: str | ast.Statement, snapshot: Any
    ) -> ResultSet:
        """Run one SELECT with the thread's read source pinned to ``snapshot``."""
        cache_key: str | None = None
        if isinstance(statement, str):
            stmt = self._parse_cached(statement)
            cache_key = statement if self.plan_cache is not None else None
        else:
            stmt = statement
        if not isinstance(stmt, ast.Select):
            raise ExecutionError(
                "snapshot execution supports only SELECT statements"
            )
        stack = getattr(self._tls, "sources", None)
        if stack is None:
            stack = self._tls.sources = []
        stack.append(snapshot)
        try:
            return self._execute_select(stmt, cache_key=cache_key)
        finally:
            stack.pop()

    def explain(self, sql: str) -> str:
        """Describe the (optimized) access plan for a SELECT.

        Accepts either bare SELECT text or ``EXPLAIN SELECT ...``.  Plans
        against a *pinned snapshot* (the committed pre-transaction view
        while a transaction is open), so EXPLAIN never blocks behind a
        writer holding the commit lock; cache entries are stamped with
        the snapshot's table versions.
        """
        stmt = self._parse_cached(sql)
        cache_key: str | None = sql
        if isinstance(stmt, ast.Explain):
            stmt, cache_key = stmt.query, None
        if not isinstance(stmt, ast.Select):
            raise SqlSyntaxError("EXPLAIN supports only SELECT")
        return self._explain_plan(stmt, cache_key)

    def _explain_plan(self, select: ast.Select, cache_key: str | None) -> str:
        snapshot = self.database.snapshot()
        try:
            stack = getattr(self._tls, "sources", None)
            if stack is None:
                stack = self._tls.sources = []
            stack.append(snapshot)
            try:
                plan = self._plan_for(select, cache_key=cache_key)
            finally:
                stack.pop()
        finally:
            snapshot.close()
        if plan is None:
            return "NoTable"
        return plan.describe()

    def _execute_explain(self, stmt: ast.Explain) -> ResultSet:
        description = self._explain_plan(stmt.query, None)
        return ResultSet(["plan"], [(line,) for line in description.splitlines()])

    # -- SELECT ------------------------------------------------------------------

    def _parse_cached(self, text: str) -> ast.Statement:
        """Parse ``text``, reusing the cached AST when available.

        Parsed statements are pure functions of the text, so they are never
        invalidated — only evicted by LRU pressure.
        """
        if self.plan_cache is None:
            return parse_sql(text)
        stmt = self.plan_cache.statement(text)
        if stmt is None:
            stmt = parse_sql(text)
            self.plan_cache.store_statement(text, stmt)
        return stmt

    @staticmethod
    def _statement_key(select: ast.Select) -> str:
        """Rendered text of ``select``, memoized on the (immutable) node.

        Correlated subqueries hit this once per outer row; rendering is
        deterministic for a frozen AST, so cache it on the object.
        """
        key = getattr(select, "_rendered_key", None)
        if key is None:
            key = select.render()
            object.__setattr__(select, "_rendered_key", key)
        return key

    @staticmethod
    def _dependencies(select: ast.Select) -> frozenset[str]:
        """Tables ``select`` reads (incl. subqueries), memoized on the node."""
        deps = getattr(select, "_dep_tables", None)
        if deps is None:
            deps = ast.referenced_tables(select)
            object.__setattr__(select, "_dep_tables", deps)
        return deps

    def _dependency_stamps(self, select: ast.Select) -> dict[str, int]:
        """``{table: version}`` stamps for the statement's tables, as seen
        by the current read source (the pinned snapshot when executing
        against one, else the live database)."""
        source = self._source()
        stamps: dict[str, int] = {}
        for name in self._dependencies(select):
            version = source.table_version(name)
            if version is not None:
                stamps[name] = version
        return stamps

    def _plan_for(
        self, select: ast.Select, cache_key: str | None = None
    ) -> PlanNode | None:
        source = self._source()
        if self.plan_cache is not None:
            if cache_key is None:
                cache_key = self._statement_key(select)
            hit, plan = self.plan_cache.plan(
                cache_key, source.table_version, columnar=self.use_columnar
            )
            if hit:
                return plan
        plan = build_plan(select, source)
        if self.use_optimizer:
            plan = optimize(plan, source, use_indexes=self.use_indexes)
        if self.use_columnar and plan is not None:
            install_kernels(plan, source)
        if self.plan_cache is not None:
            assert cache_key is not None
            self.plan_cache.store_plan(
                cache_key,
                self._dependency_stamps(select),
                plan,
                columnar=self.use_columnar,
            )
        return plan

    def _run_subquery(self, select: ast.Select, env: Env) -> list[tuple[Any, ...]]:
        return self._execute_select(select, outer_env=env).rows

    def _execute_select(
        self,
        select: ast.Select,
        outer_env: Env | None = None,
        cache_key: str | None = None,
    ) -> ResultSet:
        if self.plan_cache is not None:
            if cache_key is None:
                cache_key = self._statement_key(select)
            if outer_env is None:
                # Top-level selects can reuse materialized results outright;
                # correlated/sub-selects depend on the outer row, so only
                # their plans are shared.
                cached = self.plan_cache.result(
                    cache_key, self._source().table_version
                )
                if cached is not None:
                    columns, rows = cached
                    return ResultSet(list(columns), list(rows))
        plan = self._plan_for(select, cache_key)
        projected = None
        if plan is None:
            scope = Scope([])
            rows: list[tuple[Any, ...]] = [()]
        else:
            kernel = getattr(plan, "_kernel", None)
            if kernel is not None and not self._is_aggregate_query(select):
                # Columnar fast path: project straight off the batch with
                # compiled closures, skipping per-row Env allocation.  Falls
                # back to the row projection when any output or ORDER BY
                # expression is outside the compilable subset.
                scope, batch = kernel(self, outer_env)
                projected = self._project_batch(select, scope, batch)
                rows = [] if projected is not None else batch.materialize()
            else:
                scope, rows = self._run_plan(plan, outer_env)

        if projected is None:
            envs = [Env(scope, row, outer_env) for row in rows]
            if self._is_aggregate_query(select):
                projected = self._project_groups(select, scope, envs, outer_env)
            else:
                if select.having is not None:
                    raise PlanError("HAVING requires GROUP BY or aggregates")
                projected = self._project_rows(select, scope, envs)

        columns, keyed_rows = projected
        if select.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique = []
            for row, keys in keyed_rows:
                marker = tuple(row)
                if marker in seen:
                    continue
                seen.add(marker)
                unique.append((row, keys))
            keyed_rows = unique
        if select.order_by:
            for index in range(len(select.order_by) - 1, -1, -1):
                descending = select.order_by[index].descending
                keyed_rows.sort(
                    key=lambda pair, i=index: sort_key(pair[1][i]),
                    reverse=descending,
                )
        if select.limit is not None:
            keyed_rows = keyed_rows[: select.limit]
        result = ResultSet(columns, [row for row, _ in keyed_rows])
        if cache_key is not None and outer_env is None and self.plan_cache is not None:
            self.plan_cache.store_result(
                cache_key,
                self._dependency_stamps(select),
                result.columns,
                result.rows,
            )
        return result

    # -- projection --------------------------------------------------------------

    def _is_aggregate_query(self, select: ast.Select) -> bool:
        if select.group_by:
            return True
        for item in select.items:
            if not isinstance(item.expr, ast.Star) and ast.contains_aggregate(
                item.expr, AGGREGATE_NAMES
            ):
                return True
        if select.having is not None:
            return True
        return False

    def _expand_items(
        self, select: ast.Select, scope: Scope
    ) -> list[tuple[ast.Expr, str]]:
        """Expand stars and name every output column."""
        out: list[tuple[ast.Expr, str]] = []
        for item in select.items:
            expr = item.expr
            if isinstance(expr, ast.Star):
                matching = [
                    (binding, column)
                    for binding, column in scope.entries
                    if expr.table is None or binding == expr.table.lower()
                ]
                if not matching:
                    raise PlanError(
                        f"star {expr.render()!r} matches no table in scope"
                    )
                counts: dict[str, int] = {}
                for _, column in matching:
                    counts[column] = counts.get(column, 0) + 1
                for binding, column in matching:
                    name = column if counts[column] == 1 else f"{binding}.{column}"
                    out.append((ast.ColumnRef(column, table=binding), name))
                continue
            if item.alias:
                name = item.alias
            elif isinstance(expr, ast.ColumnRef):
                name = expr.name
            else:
                name = expr.render().lower()
            out.append((expr, name))
        return out

    def _order_exprs(
        self, select: ast.Select, items: list[tuple[ast.Expr, str]]
    ) -> list[tuple[ast.Expr | None, int | None]]:
        """Resolve ORDER BY items to (expr, select-item index) pairs.

        A bare identifier matching an output column name (or a 1-based
        ordinal literal) orders by the projected value; anything else is an
        expression evaluated in the row/group environment.
        """
        resolved: list[tuple[ast.Expr | None, int | None]] = []
        names = [name for _, name in items]
        for order in select.order_by:
            expr = order.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                index = expr.value - 1
                if not 0 <= index < len(items):
                    raise PlanError(f"ORDER BY ordinal {expr.value} out of range")
                resolved.append((None, index))
                continue
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in names
            ):
                resolved.append((None, names.index(expr.name)))
                continue
            resolved.append((expr, None))
        return resolved

    def _project_rows(
        self, select: ast.Select, scope: Scope, envs: list[Env]
    ) -> tuple[list[str], list[tuple[tuple[Any, ...], tuple[Any, ...]]]]:
        items = self._expand_items(select, scope)
        order = self._order_exprs(select, items)
        columns = [name for _, name in items]
        keyed_rows = []
        for env in envs:
            row = tuple(self._evaluator.evaluate(expr, env) for expr, _ in items)
            keys = tuple(
                row[index] if expr is None else self._evaluator.evaluate(expr, env)
                for expr, index in order
            )
            keyed_rows.append((row, keys))
        return columns, keyed_rows

    def _project_batch(
        self, select: ast.Select, scope: Scope, batch: Batch
    ) -> tuple[list[str], list[tuple[tuple[Any, ...], tuple[Any, ...]]]] | None:
        """Project a columnar batch with compiled row closures.

        Returns None when any output or ORDER BY expression falls outside
        the compilable subset (subquery, outer reference, unknown
        function), in which case the caller materializes the batch and
        takes the row projection.
        """
        items = self._expand_items(select, scope)
        item_fns = []
        for expr, _ in items:
            fn = compile_expr(expr, scope)
            if fn is None:
                return None
            item_fns.append(fn)
        #: int -> projected-column index; callable -> compiled expression.
        order_keys: list[Any] = []
        for expr, index in self._order_exprs(select, items):
            if expr is None:
                order_keys.append(index)
                continue
            fn = compile_expr(expr, scope)
            if fn is None:
                return None
            order_keys.append(fn)
        columns = [name for _, name in items]
        rows = batch.rows
        keyed_rows = []
        if not order_keys:
            for i in batch.sel:
                r = rows[i]
                keyed_rows.append((tuple(fn(r) for fn in item_fns), ()))
            return columns, keyed_rows
        for i in batch.sel:
            r = rows[i]
            row = tuple(fn(r) for fn in item_fns)
            keys = tuple(
                row[key] if isinstance(key, int) else key(r) for key in order_keys
            )
            keyed_rows.append((row, keys))
        return columns, keyed_rows

    def _project_groups(
        self,
        select: ast.Select,
        scope: Scope,
        envs: list[Env],
        outer_env: Env | None,
    ) -> tuple[list[str], list[tuple[tuple[Any, ...], tuple[Any, ...]]]]:
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                raise PlanError("'*' cannot appear in an aggregate query")
        items = self._expand_items(select, scope)
        order = self._order_exprs(select, items)
        columns = [name for _, name in items]

        groups: dict[tuple[Any, ...], list[Env]] = {}
        group_order: list[tuple[Any, ...]] = []
        if select.group_by:
            for env in envs:
                key = tuple(
                    self._evaluator.evaluate(expr, env) for expr in select.group_by
                )
                if key not in groups:
                    groups[key] = []
                    group_order.append(key)
                groups[key].append(env)
        else:
            key = ()
            groups[key] = list(envs)
            group_order.append(key)

        keyed_rows = []
        for key in group_order:
            group_envs = groups[key]
            representative = (
                group_envs[0]
                if group_envs
                else Env(scope, tuple([None] * len(scope)), outer_env)
            )
            agg = _AggregateEvaluator(self._evaluator, group_envs)
            if select.having is not None and agg.evaluate(
                select.having, representative
            ) is not True:
                continue
            row = tuple(agg.evaluate(expr, representative) for expr, _ in items)
            keys = tuple(
                row[index] if expr is None else agg.evaluate(expr, representative)
                for expr, index in order
            )
            keyed_rows.append((row, keys))
        return columns, keyed_rows

    # -- plan interpretation --------------------------------------------------------

    def _run_plan(
        self, plan: PlanNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        kernel = getattr(plan, "_kernel", None)
        if kernel is not None:
            scope, batch = kernel(self, outer_env)
            return scope, batch.materialize()
        if isinstance(plan, ScanNode):
            return self._run_scan(plan, outer_env)
        if isinstance(plan, FilterNode):
            scope, rows = self._run_plan(plan.child, outer_env)
            kept = [
                row
                for row in rows
                if self._evaluator.is_true(plan.predicate, Env(scope, row, outer_env))
            ]
            return scope, kept
        if isinstance(plan, HashJoinNode):
            return self._run_hash_join(plan, outer_env)
        if isinstance(plan, JoinNode):
            return self._run_nested_join(plan, outer_env)
        if isinstance(plan, ReorderNode):
            return self._run_reorder(plan, outer_env)
        raise ExecutionError(f"unknown plan node {type(plan).__name__}")

    def _run_plan_batch(
        self, plan: PlanNode, outer_env: Env | None
    ) -> tuple[Scope, Batch]:
        """Run a sub-plan as a batch: its kernel when it has one, else the
        row path wrapped in a full-selection batch."""
        kernel = getattr(plan, "_kernel", None)
        if kernel is not None:
            return kernel(self, outer_env)
        scope, rows = self._run_plan(plan, outer_env)
        return scope, Batch(rows, range(len(rows)))

    def _scan_candidate_ids(self, plan: ScanNode, table: Any) -> set[int] | None:
        """Row ids selected by the scan's index hints (None = all rows)."""
        candidate_ids: set[int] | None = None
        for column, value in plan.eq_filters:
            # `is None` (not `or`): index truthiness calls the O(distinct)
            # __len__, which would put a full-index sum on every lookup.
            index = table.hash_index(column)
            if index is None:
                index = table.sorted_index(column)
            assert index is not None
            ids = set(index.lookup(value))
            candidate_ids = ids if candidate_ids is None else candidate_ids & ids
        for column, values in plan.in_filters:
            # `is None` (not `or`): index truthiness calls the O(distinct)
            # __len__, which would put a full-index sum on every lookup.
            index = table.hash_index(column)
            if index is None:
                index = table.sorted_index(column)
            assert index is not None
            ids = set()
            for value in values:
                ids.update(index.lookup(value))
            candidate_ids = ids if candidate_ids is None else candidate_ids & ids
        for column, op, value in plan.range_filters:
            index = table.sorted_index(column)
            assert index is not None
            if op in ("<", "<="):
                ids = set(index.range_lookup(high=value, high_inclusive=op == "<="))
            else:
                ids = set(index.range_lookup(low=value, low_inclusive=op == ">="))
            candidate_ids = ids if candidate_ids is None else candidate_ids & ids
        return candidate_ids

    def _run_scan(
        self, plan: ScanNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        table = self._source().table(plan.table_name)
        scope = Scope([(plan.binding, col) for col in table.schema.column_names])
        candidate_ids = self._scan_candidate_ids(plan, table)
        if candidate_ids is None:
            rows: Iterable[tuple[Any, ...]] = table.rows()
        else:
            rows = (
                row
                for row_id in sorted(candidate_ids)
                if (row := table.row_by_id(row_id)) is not None
            )
        if plan.residual_filters:
            out = [
                row
                for row in rows
                if all(
                    self._evaluator.is_true(pred, Env(scope, row, outer_env))
                    for pred in plan.residual_filters
                )
            ]
        else:
            out = list(rows)
        return scope, out

    def _run_reorder(
        self, plan: ReorderNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        scope, rows = self._run_plan(plan.child, outer_env)
        # Each binding's columns occupy one contiguous segment of the row.
        segments: dict[str, tuple[int, int]] = {}
        for i, (binding, _) in enumerate(scope.entries):
            start, _end = segments.get(binding, (i, i))
            segments[binding] = (start, i + 1)
        slices = [slice(*segments[binding]) for binding in plan.order]
        entries: list[tuple[str, str]] = []
        for binding in plan.order:
            start, end = segments[binding]
            entries.extend(scope.entries[start:end])
        out = [
            tuple(value for s in slices for value in row[s]) for row in rows
        ]
        return Scope(entries), out

    def _run_nested_join(
        self, plan: JoinNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        left_scope, left_rows = self._run_plan(plan.left, outer_env)
        right_scope, right_rows = self._run_plan(plan.right, outer_env)
        scope = left_scope.merge(right_scope)
        null_pad = tuple([None] * len(right_scope))
        out = []
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if plan.condition is None or self._evaluator.is_true(
                    plan.condition, Env(scope, combined, outer_env)
                ):
                    matched = True
                    out.append(combined)
            if plan.kind == "LEFT" and not matched:
                out.append(left_row + null_pad)
        return scope, out

    def _run_hash_join(
        self, plan: HashJoinNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        left_scope, left_rows = self._run_plan(plan.left, outer_env)
        right_scope, right_rows = self._run_plan(plan.right, outer_env)
        scope = left_scope.merge(right_scope)
        buckets: dict[Any, list[tuple[Any, ...]]] = {}
        if plan.build == "left" and plan.kind == "INNER":
            # Statistics said the left input is smaller: build the hash
            # table on it and probe with right rows.  Output tuples keep
            # the left+right column order either way.
            for left_row in left_rows:
                key = self._evaluator.evaluate(
                    plan.left_key, Env(left_scope, left_row, outer_env)
                )
                if key is None:
                    continue
                buckets.setdefault(_join_key(key), []).append(left_row)
            out = []
            for right_row in right_rows:
                key = self._evaluator.evaluate(
                    plan.right_key, Env(right_scope, right_row, outer_env)
                )
                if key is None:
                    continue
                for left_row in buckets.get(_join_key(key), []):
                    combined = left_row + right_row
                    if plan.residual is None or self._evaluator.is_true(
                        plan.residual, Env(scope, combined, outer_env)
                    ):
                        out.append(combined)
            return scope, out
        for right_row in right_rows:
            key = self._evaluator.evaluate(
                plan.right_key, Env(right_scope, right_row, outer_env)
            )
            if key is None:
                continue
            buckets.setdefault(_join_key(key), []).append(right_row)
        null_pad = tuple([None] * len(right_scope))
        out = []
        for left_row in left_rows:
            key = self._evaluator.evaluate(
                plan.left_key, Env(left_scope, left_row, outer_env)
            )
            matched = False
            if key is not None:
                for right_row in buckets.get(_join_key(key), []):
                    combined = left_row + right_row
                    if plan.residual is None or self._evaluator.is_true(
                        plan.residual, Env(scope, combined, outer_env)
                    ):
                        matched = True
                        out.append(combined)
            if plan.kind == "LEFT" and not matched:
                out.append(left_row + null_pad)
        return scope, out

    # -- DDL / DML ---------------------------------------------------------------------

    def _execute_create(self, stmt: ast.CreateTable) -> ResultSet:
        columns = []
        primary_key: str | None = None
        foreign_keys = []
        for col in stmt.columns:
            type_name = col.type_name.lower()
            if type_name not in _TYPE_NAMES:
                raise SchemaError(f"unknown type {col.type_name!r}")
            nullable = not (col.not_null or col.primary_key)
            columns.append(Column(col.name, _TYPE_NAMES[type_name], nullable))
            if col.primary_key:
                if primary_key is not None:
                    raise SchemaError("multiple PRIMARY KEY columns")
                primary_key = col.name
            if col.references is not None:
                foreign_keys.append(
                    ForeignKey(col.name, col.references[0], col.references[1])
                )
        schema = TableSchema(stmt.name, columns, primary_key, foreign_keys)
        self.database.create_table(schema)
        return ResultSet(["rows_affected"], [(0,)])

    def _const(self, expr: ast.Expr) -> Any:
        return self._evaluator.evaluate(expr, Env(Scope([]), ()))

    def _execute_insert(self, stmt: ast.Insert) -> ResultSet:
        table = self.database.table(stmt.table)
        count = 0
        # One statement scope around the row loop: a snapshot pinned by a
        # concurrent reader lands before or after the whole multi-row
        # INSERT, never between its rows.
        with self.database.statement_scope():
            for row_exprs in stmt.rows:
                values = [self._const(expr) for expr in row_exprs]
                if stmt.columns:
                    if len(values) != len(stmt.columns):
                        raise PlanError("INSERT column/value count mismatch")
                    self.database.insert(stmt.table, dict(zip(stmt.columns, values)))
                else:
                    if len(values) != len(table.schema.columns):
                        raise PlanError("INSERT value count mismatch")
                    self.database.insert(stmt.table, values)
                count += 1
        return ResultSet(["rows_affected"], [(count,)])

    def _matching_row_ids(self, table_name: str, where: ast.Expr | None) -> list[int]:
        """Row ids matching a DML WHERE clause, via the scan-planning path.

        The predicate goes through the same index-hint installation as a
        SELECT scan, so UPDATE/DELETE on an indexed column avoids the full
        table scan.
        """
        table = self.database.table(table_name)
        scan = ScanNode(table.name, table.name)
        if where is not None:
            bindings = {col: [table.name] for col in table.schema.column_names}
            scan.residual_filters = split_conjuncts(qualify_expr(where, bindings))
        if self.use_optimizer and self.use_indexes:
            install_index_hints(scan, self.database)
        scope = Scope([(table.name, col) for col in table.schema.column_names])
        candidate_ids = self._scan_candidate_ids(scan, table)
        if candidate_ids is None:
            pairs: Iterable[tuple[int, tuple[Any, ...]]] = table.rows_with_ids()
        else:
            pairs = (
                (row_id, row)
                for row_id in sorted(candidate_ids)
                if (row := table.row_by_id(row_id)) is not None
            )
        out = []
        for row_id, row in pairs:
            if all(
                self._evaluator.is_true(pred, Env(scope, row))
                for pred in scan.residual_filters
            ):
                out.append(row_id)
        return out

    def _execute_delete(self, stmt: ast.Delete) -> ResultSet:
        table = self.database.table(stmt.table)
        ids = self._matching_row_ids(stmt.table, stmt.where)
        # One batched tombstone pass: a bulk DELETE emits a single
        # coalesced TableDelta (and one version bump) for the whole
        # statement instead of one listener callback per row.
        count = table.delete_rows(ids)
        return ResultSet(["rows_affected"], [(count,)])

    def _execute_update(self, stmt: ast.Update) -> ResultSet:
        table = self.database.table(stmt.table)
        for column, _ in stmt.assignments:
            if not table.schema.has_column(column):
                raise SchemaError(f"table {table.name!r} has no column {column!r}")
        scope = Scope([(table.name, col) for col in table.schema.column_names])
        ids = self._matching_row_ids(stmt.table, stmt.where)
        updated_rows = []
        for row_id in ids:
            row = table.row_by_id(row_id)
            assert row is not None
            env = Env(scope, row)
            values = dict(zip(table.schema.column_names, row))
            for column, expr in stmt.assignments:
                values[column.lower()] = self._evaluator.evaluate(expr, env)
            updated_rows.append((row_id, values))
        # In-place update: rows keep their ids and their position in the
        # table's insertion order (a delete+reinsert would move them to the
        # end and change their ids).  Routed through the database so
        # foreign keys are enforced in both directions (changed FK values
        # must match a parent; a rewritten parent key must not strand
        # children); PK and FK state are validated before mutating, so a
        # violation leaves the table untouched.
        self.database.update_rows(stmt.table, updated_rows)
        return ResultSet(["rows_affected"], [(len(ids),)])
