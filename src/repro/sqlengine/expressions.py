"""Expression evaluation over row environments.

An :class:`Env` binds qualified column names to the values of the current
row; environments chain to an ``outer`` env so correlated subqueries can see
the enclosing row.  :class:`Evaluator` implements SQL three-valued logic:
``None`` propagates through comparisons and arithmetic, and ``AND``/``OR``
follow Kleene semantics.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.errors import ExecutionError, UnknownColumnError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.functions import SCALAR_FUNCTIONS
from repro.sqlengine.types import compare_values


class Scope:
    """Ordered mapping of qualified column names to tuple positions.

    Each entry is ``(binding, column)`` — e.g. ``("s", "name")`` for alias
    ``s``.  Unqualified lookup succeeds only when unambiguous.
    """

    def __init__(self, entries: list[tuple[str, str]]) -> None:
        self.entries = list(entries)
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, list[int]] = {}
        for i, (binding, column) in enumerate(self.entries):
            self._qualified[(binding, column)] = i
            self._unqualified.setdefault(column, []).append(i)

    def __len__(self) -> int:
        return len(self.entries)

    def resolve(self, column: str, table: str | None = None) -> int | None:
        """Position of the column, or None when absent. Raises on ambiguity."""
        if table is not None:
            return self._qualified.get((table.lower(), column.lower()))
        positions = self._unqualified.get(column.lower(), [])
        if not positions:
            return None
        if len(positions) > 1:
            raise UnknownColumnError(f"ambiguous column reference {column!r}")
        return positions[0]

    def merge(self, other: "Scope") -> "Scope":
        return Scope(self.entries + other.entries)

    def qualified_names(self) -> list[str]:
        return [f"{binding}.{column}" for binding, column in self.entries]


class Env:
    """One row's values under a scope, chaining to an outer environment."""

    __slots__ = ("scope", "row", "outer")

    def __init__(self, scope: Scope, row: tuple[Any, ...], outer: "Env | None" = None):
        self.scope = scope
        self.row = row
        self.outer = outer

    def lookup(self, column: str, table: str | None = None) -> Any:
        position = self.scope.resolve(column, table)
        if position is not None:
            return self.row[position]
        if self.outer is not None:
            return self.outer.lookup(column, table)
        qualifier = f"{table}." if table else ""
        raise UnknownColumnError(f"unknown column {qualifier}{column!r}")

    def has(self, column: str, table: str | None = None) -> bool:
        try:
            position = self.scope.resolve(column, table)
        except UnknownColumnError:
            return True  # ambiguous here -> it exists
        if position is not None:
            return True
        return self.outer.has(column, table) if self.outer else False


def like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern (% and _) into an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE)


#: Signature of the hook the evaluator calls to run a subquery.
SubqueryRunner = Callable[[ast.Select, Env], list[tuple[Any, ...]]]


class Evaluator:
    """Evaluates :mod:`ast_nodes` expressions against an :class:`Env`.

    ``subquery_runner`` executes a SELECT for subquery expressions, with the
    current env passed as the correlation context.
    """

    def __init__(self, subquery_runner: SubqueryRunner | None = None) -> None:
        self._run_subquery = subquery_runner

    # -- public -------------------------------------------------------------

    def evaluate(self, expr: ast.Expr, env: Env) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        return method(expr, env)

    def is_true(self, expr: ast.Expr, env: Env) -> bool:
        """WHERE-clause truth: unknown (NULL) counts as false."""
        return self.evaluate(expr, env) is True

    # -- node handlers --------------------------------------------------------

    def _eval_literal(self, expr: ast.Literal, env: Env) -> Any:
        return expr.value

    def _eval_columnref(self, expr: ast.ColumnRef, env: Env) -> Any:
        return env.lookup(expr.name, expr.table)

    def _eval_unaryop(self, expr: ast.UnaryOp, env: Env) -> Any:
        value = self.evaluate(expr.operand, env)
        if expr.op.upper() == "NOT":
            if value is None:
                return None
            return not value
        if expr.op == "-":
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ExecutionError(f"cannot negate {value!r}")
            return -value
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _eval_binaryop(self, expr: ast.BinaryOp, env: Env) -> Any:
        op = expr.op.upper()
        if op == "AND":
            left = self.evaluate(expr.left, env)
            if left is False:
                return False
            right = self.evaluate(expr.right, env)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.evaluate(expr.left, env)
            if left is True:
                return True
            right = self.evaluate(expr.right, env)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(expr.left, env)
        right = self.evaluate(expr.right, env)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            cmp = compare_values(left, right)
            if cmp is None:
                return None
            return {
                "=": cmp == 0,
                "!=": cmp != 0,
                "<": cmp < 0,
                "<=": cmp <= 0,
                ">": cmp > 0,
                ">=": cmp >= 0,
            }[op]
        if left is None or right is None:
            return None
        if op == "+":
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return self._arith(left, right, lambda a, b: a + b, "+")
        if op == "-":
            return self._arith(left, right, lambda a, b: a - b, "-")
        if op == "*":
            return self._arith(left, right, lambda a, b: a * b, "*")
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            return self._arith(left, right, self._divide, "/")
        if op == "%":
            if right == 0:
                raise ExecutionError("modulo by zero")
            return self._arith(left, right, lambda a, b: a % b, "%")
        raise ExecutionError(f"unknown operator {expr.op!r}")

    @staticmethod
    def _divide(a: Any, b: Any) -> Any:
        result = a / b
        return result

    @staticmethod
    def _arith(left: Any, right: Any, fn: Callable[[Any, Any], Any], op: str) -> Any:
        ok_left = isinstance(left, (int, float)) and not isinstance(left, bool)
        ok_right = isinstance(right, (int, float)) and not isinstance(right, bool)
        if not (ok_left and ok_right):
            raise ExecutionError(
                f"arithmetic {op!r} needs numbers, got {left!r} and {right!r}"
            )
        return fn(left, right)

    def _eval_functioncall(self, expr: ast.FunctionCall, env: Env) -> Any:
        name = expr.name.lower()
        fn = SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ExecutionError(
                f"unknown function {expr.name!r} (aggregates are only valid "
                "in SELECT/HAVING/ORDER BY of a grouped query)"
            )
        args = [self.evaluate(arg, env) for arg in expr.args]
        return fn(*args)

    def _eval_isnull(self, expr: ast.IsNull, env: Env) -> Any:
        value = self.evaluate(expr.operand, env)
        result = value is None
        return (not result) if expr.negated else result

    def _eval_between(self, expr: ast.Between, env: Env) -> Any:
        value = self.evaluate(expr.operand, env)
        low = self.evaluate(expr.low, env)
        high = self.evaluate(expr.high, env)
        lo_cmp = (
            compare_values(value, low)
            if value is not None and low is not None
            else None
        )
        hi_cmp = (
            compare_values(value, high)
            if value is not None and high is not None
            else None
        )
        if lo_cmp is None or hi_cmp is None:
            return None
        result = lo_cmp >= 0 and hi_cmp <= 0
        return (not result) if expr.negated else result

    def _eval_like(self, expr: ast.Like, env: Env) -> Any:
        value = self.evaluate(expr.operand, env)
        pattern = self.evaluate(expr.pattern, env)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise ExecutionError("LIKE requires string operands")
        result = like_to_regex(pattern).match(value) is not None
        return (not result) if expr.negated else result

    def _eval_inlist(self, expr: ast.InList, env: Env) -> Any:
        value = self.evaluate(expr.operand, env)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, env)
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _require_runner(self) -> SubqueryRunner:
        if self._run_subquery is None:
            raise ExecutionError("subqueries are not available in this context")
        return self._run_subquery

    def _eval_insubquery(self, expr: ast.InSubquery, env: Env) -> Any:
        value = self.evaluate(expr.operand, env)
        if value is None:
            return None
        rows = self._require_runner()(expr.subquery, env)
        saw_null = False
        for row in rows:
            if len(row) != 1:
                raise ExecutionError("IN subquery must return one column")
            candidate = row[0]
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _eval_scalarsubquery(self, expr: ast.ScalarSubquery, env: Env) -> Any:
        rows = self._require_runner()(expr.subquery, env)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must return one column")
        return rows[0][0]

    def _eval_exists(self, expr: ast.Exists, env: Env) -> Any:
        rows = self._require_runner()(expr.subquery, env)
        result = bool(rows)
        return (not result) if expr.negated else result

    def _eval_star(self, expr: ast.Star, env: Env) -> Any:
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")
