"""Scalar SQL functions.

All functions are NULL-transparent: a NULL argument yields NULL (except
``coalesce``, whose whole purpose is NULL handling).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ExecutionError


def _null_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    wrapper.__name__ = fn.__name__
    return wrapper


def _require_str(value: Any, fn_name: str) -> str:
    if not isinstance(value, str):
        raise ExecutionError(f"{fn_name}() requires a string, got {value!r}")
    return value


def _require_num(value: Any, fn_name: str) -> float | int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"{fn_name}() requires a number, got {value!r}")
    return value


@_null_safe
def _upper(value: Any) -> str:
    return _require_str(value, "upper").upper()


@_null_safe
def _lower(value: Any) -> str:
    return _require_str(value, "lower").lower()


@_null_safe
def _length(value: Any) -> int:
    return len(_require_str(value, "length"))


@_null_safe
def _trim(value: Any) -> str:
    return _require_str(value, "trim").strip()


@_null_safe
def _abs(value: Any) -> float | int:
    return abs(_require_num(value, "abs"))


@_null_safe
def _round(value: Any, digits: Any = 0) -> float | int:
    number = _require_num(value, "round")
    places = _require_num(digits, "round")
    if not isinstance(places, int):
        raise ExecutionError("round() digits must be an integer")
    result = round(number, places)
    if places <= 0 and isinstance(number, float):
        return float(result)
    return result


@_null_safe
def _substr(value: Any, start: Any, length: Any = None) -> str:
    text = _require_str(value, "substr")
    begin = _require_num(start, "substr")
    if not isinstance(begin, int) or begin < 1:
        raise ExecutionError("substr() start is 1-based and must be >= 1")
    if length is None:
        return text[begin - 1 :]
    count = _require_num(length, "substr")
    if not isinstance(count, int) or count < 0:
        raise ExecutionError("substr() length must be a non-negative integer")
    return text[begin - 1 : begin - 1 + count]


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


@_null_safe
def _concat(*args: Any) -> str:
    return "".join(_require_str(arg, "concat") for arg in args)


#: Registry of scalar functions by lower-case name.
SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "upper": _upper,
    "lower": _lower,
    "length": _length,
    "trim": _trim,
    "abs": _abs,
    "round": _round,
    "substr": _substr,
    "coalesce": _coalesce,
    "concat": _concat,
}
