"""Secondary indexes for tables: hash (equality) and sorted (range).

Indexes map a column value to the set of row ids holding that value.  They
are maintained incrementally by :class:`repro.sqlengine.table.Table` on
insert/delete and consulted by the executor's access-path selection.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class HashIndex:
    """Equality index: value -> list of row ids (NULLs tracked separately)."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: dict[Any, list[int]] = {}
        self._nulls: list[int] = []

    def add(self, value: Any, row_id: int) -> None:
        if value is None:
            self._nulls.append(row_id)
        else:
            self._buckets.setdefault(value, []).append(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        bucket = self._nulls if value is None else self._buckets.get(value, [])
        try:
            bucket.remove(row_id)
        except ValueError:
            pass
        if value is not None and not bucket and value in self._buckets:
            del self._buckets[value]

    def lookup(self, value: Any) -> list[int]:
        """Row ids whose column equals ``value`` (NULL never matches)."""
        if value is None:
            return []
        return list(self._buckets.get(value, []))

    def clone(self) -> HashIndex:
        """Independent copy (bucket lists are not shared) for COW tables."""
        out = HashIndex(self.column)
        out._buckets = {value: list(ids) for value, ids in self._buckets.items()}
        out._nulls = list(self._nulls)
        return out

    def distinct_values(self) -> Iterator[Any]:
        return iter(self._buckets.keys())

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values()) + len(self._nulls)


class SortedIndex:
    """Range index backed by a sorted list of ``(value, row_id)`` pairs.

    Supports range scans for ``<``, ``<=``, ``>``, ``>=`` and ``BETWEEN``.
    All indexed values must be mutually comparable (same type family),
    which the table layer guarantees via column typing.
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._keys: list[Any] = []
        self._row_ids: list[int] = []
        self._nulls: list[int] = []

    def add(self, value: Any, row_id: int) -> None:
        if value is None:
            self._nulls.append(row_id)
            return
        pos = bisect.bisect_right(self._keys, value)
        self._keys.insert(pos, value)
        self._row_ids.insert(pos, row_id)

    def remove(self, value: Any, row_id: int) -> None:
        if value is None:
            try:
                self._nulls.remove(row_id)
            except ValueError:
                pass
            return
        lo = bisect.bisect_left(self._keys, value)
        hi = bisect.bisect_right(self._keys, value)
        for i in range(lo, hi):
            if self._row_ids[i] == row_id:
                del self._keys[i]
                del self._row_ids[i]
                return

    def range_lookup(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with ``low <op> value <op> high``; ``None`` bound = open."""
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif high_inclusive:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        return self._row_ids[lo:hi]

    def lookup(self, value: Any) -> list[int]:
        if value is None:
            return []
        return self.range_lookup(value, value)

    def clone(self) -> SortedIndex:
        """Independent copy (key/id lists are not shared) for COW tables."""
        out = SortedIndex(self.column)
        out._keys = list(self._keys)
        out._row_ids = list(self._row_ids)
        out._nulls = list(self._nulls)
        return out

    def min_value(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_value(self) -> Any:
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys) + len(self._nulls)
