"""SQL lexer: turns SQL text into a token stream.

Tokens carry their source position so syntax errors can point at the
offending character.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset(
    """
    select from where and or not in like between is null as distinct
    group by having order asc desc limit join inner left cross on
    create table insert into values delete update set primary key
    references exists true false
    begin commit rollback transaction work explain
    """.split()
)


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"  # ( ) , . ;
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word.lower()


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


def tokenize(sql: str) -> list[Token]:
    """Tokenise ``sql``; always ends with an EOF token.

    >>> [t.value for t in tokenize("SELECT a FROM t")][:3]
    ['select', 'a', 'from']
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":  # line comment
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # A dot not followed by a digit terminates the number
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j].lower()
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(kind, word, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
