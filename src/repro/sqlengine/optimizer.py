"""Cost-based plan optimizer.

Rewrites, applied in order:

1. **Predicate pushdown** — conjuncts of a FilterNode that mention only the
   bindings of one scan move into that scan; conjuncts spanning exactly the
   two sides of a join become join conditions.
2. **Join reordering** — left-deep chains of INNER joins over base scans are
   re-ordered smallest-estimated-first (statistics-driven), wrapped in a
   :class:`~repro.sqlengine.planner.ReorderNode` so output column order is
   unchanged.
3. **Hash-join selection** — an INNER/LEFT join whose condition contains an
   equi-conjunct between the two sides becomes a :class:`HashJoinNode`; the
   build side is the one with the smaller estimated cardinality.
4. **Index hints** — scan-local equality/range/IN/BETWEEN predicates on
   indexed columns become index access hints (``eq_filters`` /
   ``range_filters`` / ``in_filters``).

Cardinality estimates come from :class:`~repro.sqlengine.statistics.
TableStatistics`, which every table maintains incrementally.  The optimizer
never changes result semantics; every rewrite is covered by equivalence
tests against the naive plan.
"""

from __future__ import annotations

from typing import Any

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.database import Database
from repro.sqlengine.planner import (
    FilterNode,
    HashJoinNode,
    JoinNode,
    PlanNode,
    ReorderNode,
    ScanNode,
    conjoin,
    expr_bindings,
    split_conjuncts,
)
from repro.sqlengine.statistics import DEFAULT_SELECTIVITY, estimate_equi_join_rows
from repro.sqlengine.types import SqlType, is_numeric

_RANGE_OPS = {"<", "<=", ">", ">="}

#: Default guess for the selectivity of a join condition when combining
#: sub-plan estimates (equi-joins use max(left, right) instead).
_FILTER_GUESS = DEFAULT_SELECTIVITY


def optimize(
    plan: PlanNode | None, database: Database, use_indexes: bool = True
) -> PlanNode | None:
    """Optimize ``plan`` (may return a new tree)."""
    if plan is None:
        return None
    plan = _push_down(plan)
    plan = _reorder_joins(plan, database)
    plan = _select_hash_joins(plan, database)
    if use_indexes:
        install_index_hints(plan, database)
    return plan


# -- predicate pushdown -------------------------------------------------------


def _push_down(plan: PlanNode) -> PlanNode:
    if isinstance(plan, FilterNode):
        child = _push_down(plan.child)
        conjuncts = split_conjuncts(plan.predicate)
        remaining = []
        for conjunct in conjuncts:
            child, pushed = _try_push(child, conjunct)
            if not pushed:
                remaining.append(conjunct)
        residual = conjoin(remaining)
        return FilterNode(child, residual) if residual is not None else child
    if isinstance(plan, JoinNode):
        return JoinNode(
            _push_down(plan.left), _push_down(plan.right), plan.condition, plan.kind
        )
    return plan


def _try_push(plan: PlanNode, conjunct: ast.Expr) -> tuple[PlanNode, bool]:
    """Try to sink ``conjunct`` into ``plan``; returns (new plan, pushed?)."""
    scope = set(plan.bindings())
    refs = expr_bindings(conjunct, scope)
    if refs is None or not refs <= scope:
        return plan, False
    if isinstance(plan, ScanNode):
        plan.residual_filters.append(conjunct)
        return plan, True
    if isinstance(plan, JoinNode):
        # LEFT joins must not receive pushed predicates on the right side:
        # that would turn preserved NULL rows into filtered rows.
        left_scope = set(plan.left.bindings())
        right_scope = set(plan.right.bindings())
        if refs <= left_scope:
            new_left, pushed = _try_push(plan.left, conjunct)
            if pushed:
                return JoinNode(new_left, plan.right, plan.condition, plan.kind), True
        if refs <= right_scope and plan.kind != "LEFT":
            new_right, pushed = _try_push(plan.right, conjunct)
            if pushed:
                return JoinNode(plan.left, new_right, plan.condition, plan.kind), True
        if plan.kind != "LEFT":
            # Spans both sides: fold into the join condition.
            condition = (
                conjunct
                if plan.condition is None
                else ast.BinaryOp("AND", plan.condition, conjunct)
            )
            kind = "INNER" if plan.kind == "CROSS" else plan.kind
            return JoinNode(plan.left, plan.right, condition, kind), True
        return plan, False
    if isinstance(plan, FilterNode):
        new_child, pushed = _try_push(plan.child, conjunct)
        if pushed:
            return FilterNode(new_child, plan.predicate), True
        return plan, False
    return plan, False


# -- predicate classification (shared by estimator and index hints) -----------


def _literal_value(expr: ast.Expr) -> tuple[bool, Any]:
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, ast.Literal)
    ):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return True, -value
    return False, None


def _own_column(expr: ast.Expr, binding: str, table: Any) -> str | None:
    """The lowered column name when ``expr`` is a column of this scan."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is not None and expr.table != binding:
        return None
    if not table.schema.has_column(expr.name):
        return None
    return expr.name.lower()


def _classify_predicate(conjunct: ast.Expr, binding: str, table: Any):
    """Classify a scan-local conjunct into an index-usable shape.

    Returns one of ``("eq", column, value)``, ``("range", column, op,
    value)``, ``("in", column, values)``, ``("between", column, low,
    high)`` or ``None``.  Classification is purely syntactic — index
    availability is checked separately by the hint installer, so the
    selectivity estimator can use the same shapes without indexes.
    """
    if isinstance(conjunct, ast.Between) and not conjunct.negated:
        column = _own_column(conjunct.operand, binding, table)
        low_lit, low = _literal_value(conjunct.low)
        high_lit, high = _literal_value(conjunct.high)
        if (
            column is not None
            and low_lit
            and high_lit
            and low is not None
            and high is not None
        ):
            return "between", column, low, high
        return None
    if isinstance(conjunct, ast.InList) and not conjunct.negated:
        column = _own_column(conjunct.operand, binding, table)
        if column is None:
            return None
        values = []
        for item in conjunct.items:
            is_lit, value = _literal_value(item)
            if not is_lit or value is None:
                return None
            values.append(value)
        if not values:
            return None
        return "in", column, tuple(values)
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    op = conjunct.op
    if op not in _RANGE_OPS and op != "=":
        return None
    column: str | None = None
    literal: Any = None
    flipped = False
    is_lit, value = _literal_value(conjunct.right)
    if is_lit:
        column, literal = _own_column(conjunct.left, binding, table), value
    if column is None:
        is_lit, value = _literal_value(conjunct.left)
        if is_lit:
            column, literal = _own_column(conjunct.right, binding, table), value
            flipped = True
    if column is None or literal is None:
        return None
    if op == "=":
        return "eq", column, literal
    if flipped:  # literal OP column  ==  column (flip OP) literal
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    return "range", column, op, literal


# -- cardinality estimation ---------------------------------------------------


def _predicate_selectivity(conjunct: ast.Expr, binding: str, table: Any) -> float:
    stats = table.statistics
    spec = _classify_predicate(conjunct, binding, table)
    if spec is None:
        if isinstance(conjunct, ast.IsNull):
            column = _own_column(conjunct.operand, binding, table)
            if column is not None and stats.row_count:
                fraction = stats.column(column).null_count / stats.row_count
                return 1.0 - fraction if conjunct.negated else fraction
        return DEFAULT_SELECTIVITY
    if spec[0] == "eq":
        return stats.eq_selectivity(spec[1], spec[2])
    if spec[0] == "in":
        return stats.in_selectivity(spec[1], spec[2])
    if spec[0] == "between":
        return stats.between_selectivity(spec[1], spec[2], spec[3])
    return stats.range_selectivity(spec[1], spec[2], spec[3])


def estimate_scan_rows(scan: ScanNode, database: Database) -> float:
    """Estimated output rows of a scan, from table statistics."""
    table = database.table(scan.table_name)
    stats = table.statistics
    rows = float(stats.row_count)
    if rows <= 0.0:
        return 0.0
    selectivity = 1.0
    for conjunct in scan.residual_filters:
        selectivity *= _predicate_selectivity(conjunct, scan.binding, table)
    for column, value in scan.eq_filters:
        selectivity *= stats.eq_selectivity(column, value)
    for column, values in scan.in_filters:
        selectivity *= stats.in_selectivity(column, values)
    for column, op, value in scan.range_filters:
        selectivity *= stats.range_selectivity(column, op, value)
    return rows * selectivity


def _binding_tables(plan: PlanNode) -> dict[str, str]:
    """Map every scan binding in ``plan`` to its base table name."""
    out: dict[str, str] = {}

    def walk(node: PlanNode) -> None:
        if isinstance(node, ScanNode):
            out[node.binding] = node.table_name
        elif isinstance(node, (JoinNode, HashJoinNode)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (FilterNode, ReorderNode)):
            walk(node.child)

    walk(plan)
    return out


def _join_key_distinct(
    database: Database, table_name: str, column: str
) -> float | None:
    """FK/PK-aware distinct count of a join-key column, or None if unknown.

    A primary key has exactly ``row_count`` distinct values; a foreign key
    can reference at most the parent table's row count — both bounds are
    usually far sharper than the maintained per-column distinct count on
    freshly-filtered or growing tables.
    """
    if not database.has_table(table_name):
        return None
    table = database.table(table_name)
    schema = table.schema
    if not schema.has_column(column):
        return None
    column = column.lower()
    stats = table.statistics
    if schema.primary_key == column:
        return float(stats.row_count)
    distinct = stats.column_distinct(column)
    result = float(distinct) if distinct else None
    fk = schema.foreign_key_for(column)
    if fk is not None and database.has_table(fk.ref_table):
        cap = float(database.statistics(fk.ref_table).row_count)
        result = cap if result is None else min(result, cap)
    return result


def _key_distinct(
    key: ast.Expr, bindings: dict[str, str], database: Database
) -> float | None:
    """Distinct count of a join-key expression when it is a base column."""
    if not isinstance(key, ast.ColumnRef):
        return None
    if key.table is not None:
        table_name = bindings.get(key.table)
    elif len(bindings) == 1:
        table_name = next(iter(bindings.values()))
    else:
        return None  # unqualified key over multiple scans: ambiguous
    if table_name is None:
        return None
    return _join_key_distinct(database, table_name, key.name)


def estimate_rows(plan: PlanNode, database: Database) -> float:
    """Estimated output rows of any plan subtree."""
    if isinstance(plan, ScanNode):
        return estimate_scan_rows(plan, database)
    if isinstance(plan, FilterNode):
        rows = estimate_rows(plan.child, database)
        return rows * _FILTER_GUESS ** len(split_conjuncts(plan.predicate))
    if isinstance(plan, ReorderNode):
        return estimate_rows(plan.child, database)
    if isinstance(plan, HashJoinNode):
        left = estimate_rows(plan.left, database)
        right = estimate_rows(plan.right, database)
        return estimate_equi_join_rows(
            left,
            right,
            _key_distinct(plan.left_key, _binding_tables(plan.left), database),
            _key_distinct(plan.right_key, _binding_tables(plan.right), database),
        )
    if isinstance(plan, JoinNode):
        left = estimate_rows(plan.left, database)
        right = estimate_rows(plan.right, database)
        if plan.condition is None:  # cross product
            return left * right
        left_scope = set(plan.left.bindings())
        right_scope = set(plan.right.bindings())
        for conjunct in split_conjuncts(plan.condition):
            keys = _equi_key(conjunct, left_scope, right_scope)
            if keys is not None:
                return estimate_equi_join_rows(
                    left,
                    right,
                    _key_distinct(keys[0], _binding_tables(plan.left), database),
                    _key_distinct(keys[1], _binding_tables(plan.right), database),
                )
        # Non-equi condition: fall back to the key-join guess.
        return max(left, right)
    return 0.0  # pragma: no cover - defensive


# -- join reordering ----------------------------------------------------------


def _collect_inner_chain(
    plan: PlanNode,
) -> tuple[list[ScanNode], list[ast.Expr]] | None:
    """Scans + condition conjuncts of a left-deep INNER/CROSS chain, or None."""
    if isinstance(plan, ScanNode):
        return [plan], []
    if isinstance(plan, JoinNode) and plan.kind in ("INNER", "CROSS"):
        if not isinstance(plan.right, ScanNode):
            return None
        left = _collect_inner_chain(plan.left)
        if left is None:
            return None
        scans, conjuncts = left
        return scans + [plan.right], conjuncts + split_conjuncts(plan.condition)
    return None


def _reorder_joins(plan: PlanNode, database: Database) -> PlanNode:
    if isinstance(plan, FilterNode):
        return FilterNode(_reorder_joins(plan.child, database), plan.predicate)
    if not isinstance(plan, JoinNode):
        return plan
    chain = _collect_inner_chain(plan)
    if chain is None or len(chain[0]) < 3:
        return JoinNode(
            _reorder_joins(plan.left, database),
            _reorder_joins(plan.right, database),
            plan.condition,
            plan.kind,
        )
    scans, conjuncts = chain
    all_bindings = {scan.binding for scan in scans}
    conjunct_refs: list[tuple[ast.Expr, set[str]]] = []
    for conjunct in conjuncts:
        refs = expr_bindings(conjunct, all_bindings)
        if refs is None:  # subquery or unresolvable ref: leave the plan alone
            return plan
        conjunct_refs.append((conjunct, refs))

    estimates = {scan.binding: estimate_scan_rows(scan, database) for scan in scans}
    tables = {scan.binding: scan.table_name for scan in scans}
    original_order = [scan.binding for scan in scans]
    position = {binding: i for i, binding in enumerate(original_order)}

    def rank(binding: str) -> tuple[float, int]:
        return estimates[binding], position[binding]  # stable on ties

    order = [min(all_bindings, key=rank)]
    placed = {order[0]}
    remaining = all_bindings - placed
    current_rows = estimates[order[0]]

    def joined_rows(binding: str) -> float:
        """Estimated rows after joining ``binding`` into the placed set.

        Uses the FK/PK-aware equi-join formula over the connecting
        conjuncts; several connecting keys keep the tightest estimate.
        """
        best: float | None = None
        for conjunct, refs in conjunct_refs:
            if (
                binding not in refs
                or not refs - {binding} <= placed
                or refs == {binding}
            ):
                continue
            keys = _equi_key(conjunct, placed, {binding})
            if keys is None:
                continue
            est = estimate_equi_join_rows(
                current_rows,
                estimates[binding],
                _key_distinct(keys[0], tables, database),
                _key_distinct(keys[1], tables, database),
            )
            best = est if best is None else min(best, est)
        if best is None:  # connected by a non-equi conjunct only
            best = max(current_rows, estimates[binding])
        return best

    while remaining:
        connected = [
            binding
            for binding in remaining
            if any(
                binding in refs and (refs - {binding}) & placed
                for _, refs in conjunct_refs
            )
        ]
        if connected:
            nxt = min(connected, key=lambda b: (joined_rows(b),) + rank(b))
            next_rows = joined_rows(nxt)
        else:  # cartesian island: fall back to smallest scan first
            nxt = min(remaining, key=rank)
            next_rows = current_rows * estimates[nxt]
        order.append(nxt)
        placed.add(nxt)
        remaining.remove(nxt)
        current_rows = next_rows

    if order == original_order:
        return plan

    by_binding = {scan.binding: scan for scan in scans}
    tree: PlanNode = by_binding[order[0]]
    built = {order[0]}
    pending = list(conjunct_refs)
    for binding in order[1:]:
        built.add(binding)
        attached = [c for c, refs in pending if refs <= built]
        pending = [(c, refs) for c, refs in pending if not refs <= built]
        condition = conjoin(attached)
        kind = "INNER" if condition is not None else "CROSS"
        tree = JoinNode(tree, by_binding[binding], condition, kind)
    return ReorderNode(tree, tuple(original_order))


# -- hash-join selection ---------------------------------------------------------


def _equi_key(
    conjunct: ast.Expr, left_scope: set[str], right_scope: set[str]
) -> tuple[ast.Expr, ast.Expr] | None:
    """If ``conjunct`` is ``left_col = right_col`` across sides, return keys."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    sides = []
    for operand in (conjunct.left, conjunct.right):
        refs = expr_bindings(operand, left_scope | right_scope)
        if refs is None or not refs:
            return None
        sides.append(refs)
    if sides[0] <= left_scope and sides[1] <= right_scope:
        return conjunct.left, conjunct.right
    if sides[0] <= right_scope and sides[1] <= left_scope:
        return conjunct.right, conjunct.left
    return None


def _select_hash_joins(plan: PlanNode, database: Database) -> PlanNode:
    if isinstance(plan, FilterNode):
        return FilterNode(_select_hash_joins(plan.child, database), plan.predicate)
    if isinstance(plan, ReorderNode):
        return ReorderNode(_select_hash_joins(plan.child, database), plan.order)
    if isinstance(plan, HashJoinNode):  # pragma: no cover - defensive
        return plan
    if not isinstance(plan, JoinNode):
        return plan
    left = _select_hash_joins(plan.left, database)
    right = _select_hash_joins(plan.right, database)
    if plan.kind not in ("INNER", "LEFT") or plan.condition is None:
        return JoinNode(left, right, plan.condition, plan.kind)
    left_scope = set(left.bindings())
    right_scope = set(right.bindings())
    conjuncts = split_conjuncts(plan.condition)
    for i, conjunct in enumerate(conjuncts):
        keys = _equi_key(conjunct, left_scope, right_scope)
        if keys is not None:
            residual = conjoin(conjuncts[:i] + conjuncts[i + 1 :])
            est_left = estimate_rows(left, database)
            est_right = estimate_rows(right, database)
            # Build on the smaller input.  LEFT joins must probe from the
            # preserved (left) side, so they always build right.
            build = "left" if plan.kind == "INNER" and est_left < est_right else "right"
            return HashJoinNode(
                left,
                right,
                keys[0],
                keys[1],
                kind=plan.kind,
                residual=residual,
                build=build,
                est_left=est_left,
                est_right=est_right,
            )
    return JoinNode(left, right, plan.condition, plan.kind)


# -- index hints -----------------------------------------------------------------


def install_index_hints(plan: PlanNode, database: Database) -> None:
    """Move index-usable scan predicates into access hints, in place.

    Also used by the engine's DML path, so UPDATE/DELETE row matching
    benefits from the same index access as SELECT.
    """
    if isinstance(plan, FilterNode):
        install_index_hints(plan.child, database)
        return
    if isinstance(plan, ReorderNode):
        install_index_hints(plan.child, database)
        return
    if isinstance(plan, (JoinNode, HashJoinNode)):
        install_index_hints(plan.left, database)
        install_index_hints(plan.right, database)
        return
    if not isinstance(plan, ScanNode):  # pragma: no cover - defensive
        return
    table = database.table(plan.table_name)
    kept: list[ast.Expr] = []
    for conjunct in plan.residual_filters:
        hints = _scan_hint(conjunct, plan.binding, table)
        if hints is None:
            kept.append(conjunct)
            continue
        for hint in hints:
            if hint[0] == "eq":
                plan.eq_filters.append((hint[1], hint[2]))
            elif hint[0] == "in":
                plan.in_filters.append((hint[1], hint[2]))
            else:
                plan.range_filters.append((hint[1], hint[2], hint[3]))
    plan.residual_filters = kept


def _literal_fits_column(table: Any, column: str, value: Any) -> bool:
    """True when comparing ``value`` with the column cannot type-error.

    Index lookups silently miss on type mismatches, but the residual
    evaluator raises ``TypeMismatchError`` — so a mismatched literal must
    stay residual or the indexed and naive plans disagree on semantics.
    """
    sql_type = table.schema.column(column).sql_type
    if isinstance(value, bool):
        return sql_type is SqlType.BOOL
    if isinstance(value, (int, float)):
        return is_numeric(sql_type)
    if isinstance(value, str):
        return sql_type is SqlType.TEXT
    return False


def _scan_hint(conjunct: ast.Expr, binding: str, table: Any):
    """Index-access hints for one conjunct, or None to keep it residual.

    Returns a list because a BETWEEN expands into a pair of range hints
    over the same sorted index.
    """
    spec = _classify_predicate(conjunct, binding, table)
    if spec is None:
        return None
    kind, column = spec[0], spec[1]
    has_hash = table.hash_index(column) is not None
    has_sorted = table.sorted_index(column) is not None
    if kind == "eq":
        if (has_hash or has_sorted) and _literal_fits_column(table, column, spec[2]):
            return [("eq", column, spec[2])]
        return None
    if kind == "in":
        # Literal IN-lists become a multi-equality lookup (union of row ids).
        if (has_hash or has_sorted) and all(
            _literal_fits_column(table, column, value) for value in spec[2]
        ):
            return [("in", column, spec[2])]
        return None
    if kind == "between":
        # BETWEEN becomes a sorted-index range pair (the executor
        # intersects the two half-open lookups).
        if has_sorted and all(
            _literal_fits_column(table, column, value) for value in (spec[2], spec[3])
        ):
            return [
                ("range", column, ">=", spec[2]),
                ("range", column, "<=", spec[3]),
            ]
        return None
    if not has_sorted or not _literal_fits_column(table, column, spec[3]):
        return None
    return [("range", column, spec[2], spec[3])]
