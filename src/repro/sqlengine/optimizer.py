"""Rule-based plan optimizer.

Three rewrites, applied in order:

1. **Predicate pushdown** — conjuncts of a FilterNode that mention only the
   bindings of one scan move into that scan; conjuncts spanning exactly the
   two sides of a join become join conditions.
2. **Hash-join selection** — an INNER/LEFT join whose condition contains an
   equi-conjunct between the two sides becomes a :class:`HashJoinNode`.
3. **Index hints** — scan-local equality/range predicates on indexed columns
   become index access hints (``eq_filters`` / ``range_filters``).

The optimizer never changes result semantics; every rewrite is covered by
equivalence tests against the naive plan.
"""

from __future__ import annotations

from typing import Any

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.database import Database
from repro.sqlengine.planner import (
    FilterNode,
    HashJoinNode,
    JoinNode,
    PlanNode,
    ScanNode,
    conjoin,
    expr_bindings,
    split_conjuncts,
)

_RANGE_OPS = {"<", "<=", ">", ">="}


def optimize(plan: PlanNode | None, database: Database, use_indexes: bool = True) -> PlanNode | None:
    """Optimize ``plan`` (may return a new tree)."""
    if plan is None:
        return None
    plan = _push_down(plan)
    plan = _select_hash_joins(plan)
    if use_indexes:
        _install_index_hints(plan, database)
    return plan


# -- predicate pushdown -------------------------------------------------------


def _push_down(plan: PlanNode) -> PlanNode:
    if isinstance(plan, FilterNode):
        child = _push_down(plan.child)
        conjuncts = split_conjuncts(plan.predicate)
        remaining = []
        for conjunct in conjuncts:
            child, pushed = _try_push(child, conjunct)
            if not pushed:
                remaining.append(conjunct)
        residual = conjoin(remaining)
        return FilterNode(child, residual) if residual is not None else child
    if isinstance(plan, JoinNode):
        return JoinNode(
            _push_down(plan.left), _push_down(plan.right), plan.condition, plan.kind
        )
    return plan


def _try_push(plan: PlanNode, conjunct: ast.Expr) -> tuple[PlanNode, bool]:
    """Try to sink ``conjunct`` into ``plan``; returns (new plan, pushed?)."""
    scope = set(plan.bindings())
    refs = expr_bindings(conjunct, scope)
    if refs is None or not refs <= scope:
        return plan, False
    if isinstance(plan, ScanNode):
        plan.residual_filters.append(conjunct)
        return plan, True
    if isinstance(plan, JoinNode):
        # LEFT joins must not receive pushed predicates on the right side:
        # that would turn preserved NULL rows into filtered rows.
        left_scope = set(plan.left.bindings())
        right_scope = set(plan.right.bindings())
        if refs <= left_scope:
            new_left, pushed = _try_push(plan.left, conjunct)
            if pushed:
                return JoinNode(new_left, plan.right, plan.condition, plan.kind), True
        if refs <= right_scope and plan.kind != "LEFT":
            new_right, pushed = _try_push(plan.right, conjunct)
            if pushed:
                return JoinNode(plan.left, new_right, plan.condition, plan.kind), True
        if plan.kind != "LEFT":
            # Spans both sides: fold into the join condition.
            condition = (
                conjunct
                if plan.condition is None
                else ast.BinaryOp("AND", plan.condition, conjunct)
            )
            kind = "INNER" if plan.kind == "CROSS" else plan.kind
            return JoinNode(plan.left, plan.right, condition, kind), True
        return plan, False
    if isinstance(plan, FilterNode):
        new_child, pushed = _try_push(plan.child, conjunct)
        if pushed:
            return FilterNode(new_child, plan.predicate), True
        return plan, False
    return plan, False


# -- hash-join selection ---------------------------------------------------------


def _equi_key(
    conjunct: ast.Expr, left_scope: set[str], right_scope: set[str]
) -> tuple[ast.Expr, ast.Expr] | None:
    """If ``conjunct`` is ``left_col = right_col`` across sides, return keys."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    sides = []
    for operand in (conjunct.left, conjunct.right):
        refs = expr_bindings(operand, left_scope | right_scope)
        if refs is None or not refs:
            return None
        sides.append(refs)
    if sides[0] <= left_scope and sides[1] <= right_scope:
        return conjunct.left, conjunct.right
    if sides[0] <= right_scope and sides[1] <= left_scope:
        return conjunct.right, conjunct.left
    return None


def _select_hash_joins(plan: PlanNode) -> PlanNode:
    if isinstance(plan, FilterNode):
        return FilterNode(_select_hash_joins(plan.child), plan.predicate)
    if isinstance(plan, HashJoinNode):  # pragma: no cover - defensive
        return plan
    if not isinstance(plan, JoinNode):
        return plan
    left = _select_hash_joins(plan.left)
    right = _select_hash_joins(plan.right)
    if plan.kind not in ("INNER", "LEFT") or plan.condition is None:
        return JoinNode(left, right, plan.condition, plan.kind)
    left_scope = set(left.bindings())
    right_scope = set(right.bindings())
    conjuncts = split_conjuncts(plan.condition)
    for i, conjunct in enumerate(conjuncts):
        keys = _equi_key(conjunct, left_scope, right_scope)
        if keys is not None:
            residual = conjoin(conjuncts[:i] + conjuncts[i + 1 :])
            return HashJoinNode(
                left, right, keys[0], keys[1], kind=plan.kind, residual=residual
            )
    return JoinNode(left, right, plan.condition, plan.kind)


# -- index hints -----------------------------------------------------------------


def _literal_value(expr: ast.Expr) -> tuple[bool, Any]:
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-" and isinstance(expr.operand, ast.Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return True, -value
    return False, None


def _install_index_hints(plan: PlanNode, database: Database) -> None:
    if isinstance(plan, FilterNode):
        _install_index_hints(plan.child, database)
        return
    if isinstance(plan, (JoinNode, HashJoinNode)):
        _install_index_hints(plan.left, database)
        _install_index_hints(plan.right, database)
        return
    if not isinstance(plan, ScanNode):  # pragma: no cover - defensive
        return
    table = database.table(plan.table_name)
    kept: list[ast.Expr] = []
    for conjunct in plan.residual_filters:
        hint = _scan_hint(conjunct, plan.binding, table)
        if hint is None:
            kept.append(conjunct)
            continue
        kind, column, payload = hint
        if kind == "eq":
            plan.eq_filters.append((column, payload))
        else:
            op, value = payload
            plan.range_filters.append((column, op, value))
    plan.residual_filters = kept


def _scan_hint(conjunct: ast.Expr, binding: str, table: Any):
    """Classify a conjunct as an index-usable eq/range filter, if possible."""
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    op = conjunct.op
    if op not in _RANGE_OPS and op != "=":
        return None
    column_side: ast.ColumnRef | None = None
    literal_side: Any = None
    flipped = False
    is_lit, value = _literal_value(conjunct.right)
    if isinstance(conjunct.left, ast.ColumnRef) and is_lit:
        column_side, literal_side = conjunct.left, value
    else:
        is_lit, value = _literal_value(conjunct.left)
        if isinstance(conjunct.right, ast.ColumnRef) and is_lit:
            column_side, literal_side = conjunct.right, value
            flipped = True
    if column_side is None or literal_side is None:
        return None
    if column_side.table is not None and column_side.table != binding:
        return None
    if not table.schema.has_column(column_side.name):
        return None
    column = column_side.name.lower()
    if op == "=":
        if table.hash_index(column) is not None or table.sorted_index(column) is not None:
            return "eq", column, literal_side
        return None
    if table.sorted_index(column) is None:
        return None
    if flipped:  # literal OP column  ==  column (flip OP) literal
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    return "range", column, (op, literal_side)
