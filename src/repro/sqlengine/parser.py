"""Recursive-descent parser for the SQL subset.

Grammar (informal):

    statement   := select | create | insert | delete | update
                 | EXPLAIN select
                 | (BEGIN | COMMIT | ROLLBACK) [TRANSACTION | WORK]
    select      := SELECT [DISTINCT] items [FROM table_ref join* ]
                   [WHERE expr] [GROUP BY exprs] [HAVING expr]
                   [ORDER BY order_items] [LIMIT int]
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive (comparison | IS [NOT] NULL | [NOT] IN ... |
                   [NOT] LIKE ... | [NOT] BETWEEN ...)?
    additive    := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary       := '-' unary | primary
    primary     := literal | column | function | '(' expr|select ')' |
                   EXISTS '(' select ')'
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.lexer import Token, TokenType, tokenize

_COMPARISONS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class Parser:
    """Single-use parser over a token list."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value in words

    def _match_keyword(self, *words: str) -> Token | None:
        if self._check_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._match_keyword(word)
        if token is None:
            actual = self._peek()
            raise SqlSyntaxError(
                f"expected {word.upper()!r}, found {actual.value!r}", actual.position
            )
        return token

    def _match_punct(self, ch: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == ch:
            return self._advance()
        return None

    def _expect_punct(self, ch: str) -> Token:
        token = self._match_punct(ch)
        if token is None:
            actual = self._peek()
            raise SqlSyntaxError(
                f"expected {ch!r}, found {actual.value!r}", actual.position
            )
        return token

    def _match_operator(self, *ops: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self._advance()
        return None

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return token.value
        raise SqlSyntaxError(f"expected {what}, found {token.value!r}", token.position)

    # -- entry points ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("select"):
            stmt: ast.Statement = self._parse_select()
        elif token.is_keyword("create"):
            stmt = self._parse_create()
        elif token.is_keyword("insert"):
            stmt = self._parse_insert()
        elif token.is_keyword("delete"):
            stmt = self._parse_delete()
        elif token.is_keyword("update"):
            stmt = self._parse_update()
        elif token.is_keyword("explain"):
            self._advance()
            stmt = ast.Explain(self._parse_select())
        elif token.is_keyword("begin"):
            self._advance()
            self._match_keyword("transaction", "work")
            stmt = ast.BeginTransaction()
        elif token.is_keyword("commit"):
            self._advance()
            self._match_keyword("transaction", "work")
            stmt = ast.CommitTransaction()
        elif token.is_keyword("rollback"):
            self._advance()
            self._match_keyword("transaction", "work")
            stmt = ast.RollbackTransaction()
        else:
            raise SqlSyntaxError(
                f"expected a statement, found {token.value!r}", token.position
            )
        self._match_punct(";")
        tail = self._peek()
        if tail.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {tail.value!r}", tail.position
            )
        return stmt

    # -- SELECT ------------------------------------------------------------------

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("select")
        distinct = self._match_keyword("distinct") is not None
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())

        from_table: ast.TableRef | None = None
        joins: list[ast.Join] = []
        if self._match_keyword("from"):
            from_table = self._parse_table_ref()
            while True:
                if self._match_punct(","):
                    joins.append(ast.Join(self._parse_table_ref(), None, kind="CROSS"))
                    continue
                if self._check_keyword("join", "inner", "left", "cross"):
                    joins.append(self._parse_join())
                    continue
                break

        where = self._parse_expr() if self._match_keyword("where") else None

        group_by: list[ast.Expr] = []
        if self._match_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expr())
            while self._match_punct(","):
                group_by.append(self._parse_expr())

        having = self._parse_expr() if self._match_keyword("having") else None

        order_by: list[ast.OrderItem] = []
        if self._match_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._match_punct(","):
                order_by.append(self._parse_order_item())

        limit: int | None = None
        if self._match_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER or "." in token.value:
                raise SqlSyntaxError("LIMIT requires an integer", token.position)
            self._advance()
            limit = int(token.value)

        return ast.Select(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        # t.*
        if (
            token.type is TokenType.IDENT
            and self._peek(1).type is TokenType.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            self._advance()
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(table=token.value))
        expr = self._parse_expr()
        alias: str | None = None
        if self._match_keyword("as"):
            alias = self._expect_ident("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self._expect_ident("table name")
        alias: str | None = None
        if self._match_keyword("as"):
            alias = self._expect_ident("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    def _parse_join(self) -> ast.Join:
        kind = "INNER"
        if self._match_keyword("left"):
            kind = "LEFT"
            self._expect_keyword("join")
        elif self._match_keyword("cross"):
            kind = "CROSS"
            self._expect_keyword("join")
        else:
            self._match_keyword("inner")
            self._expect_keyword("join")
        table = self._parse_table_ref()
        condition: ast.Expr | None = None
        if kind != "CROSS":
            self._expect_keyword("on")
            condition = self._parse_expr()
        return ast.Join(table, condition, kind=kind)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._match_keyword("desc"):
            descending = True
        else:
            self._match_keyword("asc")
        return ast.OrderItem(expr, descending)

    # -- expressions --------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._match_keyword("or"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._match_keyword("and"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._match_keyword("not"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISONS:
            self._advance()
            op = "!=" if token.value == "<>" else token.value
            return ast.BinaryOp(op, left, self._parse_additive())
        if self._match_keyword("is"):
            negated = self._match_keyword("not") is not None
            self._expect_keyword("null")
            return ast.IsNull(left, negated)
        negated = False
        if self._check_keyword("not") and self._peek(1).type is TokenType.KEYWORD:
            follower = self._peek(1).value
            if follower in ("in", "like", "between"):
                self._advance()
                negated = True
        if self._match_keyword("in"):
            self._expect_punct("(")
            if self._check_keyword("select"):
                sub = self._parse_select()
                self._expect_punct(")")
                return ast.InSubquery(left, sub, negated)
            items = [self._parse_expr()]
            while self._match_punct(","):
                items.append(self._parse_expr())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if self._match_keyword("like"):
            return ast.Like(left, self._parse_additive(), negated)
        if self._match_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._match_operator("+", "-")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._match_operator("*", "/", "%")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expr:
        if self._match_operator("-"):
            return ast.UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value:
                return ast.Literal(float(token.value))
            return ast.Literal(int(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("exists"):
            self._advance()
            self._expect_punct("(")
            sub = self._parse_select()
            self._expect_punct(")")
            return ast.Exists(sub)
        if self._match_punct("("):
            if self._check_keyword("select"):
                sub = self._parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(sub)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            # function call?
            if self._peek(1).type is TokenType.PUNCT and self._peek(1).value == "(":
                return self._parse_function()
            self._advance()
            if self._match_punct("."):
                column = self._expect_ident("column name")
                return ast.ColumnRef(column, table=token.value)
            return ast.ColumnRef(token.value)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} in expression", token.position
        )

    def _parse_function(self) -> ast.Expr:
        name = self._expect_ident("function name")
        self._expect_punct("(")
        if self._match_punct(")"):
            return ast.FunctionCall(name)
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            self._expect_punct(")")
            return ast.FunctionCall(name, (ast.Star(),))
        distinct = self._match_keyword("distinct") is not None
        args = [self._parse_expr()]
        while self._match_punct(","):
            args.append(self._parse_expr())
        self._expect_punct(")")
        return ast.FunctionCall(name, tuple(args), distinct=distinct)

    # -- CREATE / INSERT / DELETE / UPDATE --------------------------------------

    def _parse_create(self) -> ast.CreateTable:
        self._expect_keyword("create")
        self._expect_keyword("table")
        name = self._expect_ident("table name")
        self._expect_punct("(")
        columns = [self._parse_column_def()]
        while self._match_punct(","):
            columns.append(self._parse_column_def())
        self._expect_punct(")")
        return ast.CreateTable(name, tuple(columns))

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_ident("column name")
        type_token = self._peek()
        if type_token.type is not TokenType.IDENT:
            raise SqlSyntaxError("expected a type name", type_token.position)
        self._advance()
        not_null = False
        primary = False
        references: tuple[str, str] | None = None
        while True:
            if self._match_keyword("primary"):
                self._expect_keyword("key")
                primary = True
                continue
            if self._check_keyword("not") and self._peek(1).is_keyword("null"):
                self._advance()
                self._advance()
                not_null = True
                continue
            if self._match_keyword("references"):
                ref_table = self._expect_ident("referenced table")
                self._expect_punct("(")
                ref_column = self._expect_ident("referenced column")
                self._expect_punct(")")
                references = (ref_table, ref_column)
                continue
            break
        return ast.ColumnDef(
            name, type_token.value.upper(), not_null, primary, references
        )

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident("table name")
        columns: list[str] = []
        if self._match_punct("("):
            columns.append(self._expect_ident("column name"))
            while self._match_punct(","):
                columns.append(self._expect_ident("column name"))
            self._expect_punct(")")
        self._expect_keyword("values")
        rows = [self._parse_value_row()]
        while self._match_punct(","):
            rows.append(self._parse_value_row())
        return ast.Insert(table, tuple(columns), tuple(rows))

    def _parse_value_row(self) -> tuple[ast.Expr, ...]:
        self._expect_punct("(")
        values = [self._parse_expr()]
        while self._match_punct(","):
            values.append(self._parse_expr())
        self._expect_punct(")")
        return tuple(values)

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident("table name")
        where = self._parse_expr() if self._match_keyword("where") else None
        return ast.Delete(table, where)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("update")
        table = self._expect_ident("table name")
        self._expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self._match_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._match_keyword("where") else None
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_ident("column name")
        token = self._match_operator("=")
        if token is None:
            actual = self._peek()
            raise SqlSyntaxError("expected '=' in SET clause", actual.position)
        return column, self._parse_expr()


def parse_sql(sql: str) -> ast.Statement:
    """Parse one SQL statement.

    >>> parse_sql("SELECT 1").items[0].expr.value
    1
    """
    return Parser(sql).parse_statement()


def parse_select(sql: str) -> ast.Select:
    """Parse SQL that must be a SELECT statement."""
    stmt = parse_sql(sql)
    if not isinstance(stmt, ast.Select):
        raise SqlSyntaxError("expected a SELECT statement")
    return stmt
