"""Statement-plan cache: the engine's prepared-statement layer.

One LRU maps statement text to everything the engine can reuse across
executions:

* the parsed AST — a pure function of the text, never invalidated;
* the optimized plan — stamped with the per-table versions of every table
  the statement references (``{table: Table.version}`` at build time);
* for top-level SELECTs, the materialized result rows — stamped the same
  way, so a repeated question with no intervening mutation skips parse,
  plan, optimize *and* execution.

Invalidation is dependency-aware and lazy: a cached plan/result is ignored
(then overwritten) only when the version stamp of a table *it depends on*
has moved.  A write to table A leaves entries that touch only table B
untouched — there is no global epoch.  A dropped table reports no current
version, so entries depending on it can never false-hit, and per-table
stamps are drawn from one database-wide clock, so a dropped-and-recreated
table cannot echo an old stamp either.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Mapping

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.planner import PlanNode

#: Supplies the current version stamp of a table, or None when it no
#: longer exists (``Database.table_version``).
VersionLookup = Callable[[str], "int | None"]


def _stamps_current(
    stamps: Mapping[str, int] | None, version_of: VersionLookup
) -> bool:
    """True when every recorded dependency stamp matches the live table."""
    if stamps is None:
        return False
    return all(version_of(table) == stamp for table, stamp in stamps.items())


class LruCache:
    """Thread-safe LRU mapping with optional per-entry TTL.

    Also used by the NLI prepared-question cache and the clarification
    registry, both of which are hit by concurrent ``NliService.ask()``
    readers — every public method holds an internal lock, because
    ``OrderedDict`` reordering is not safe under free-threaded access.

    ``ttl_s`` bounds an entry's age: a ``get``/``__contains__`` that finds
    an entry older than the TTL treats it as a miss and evicts it
    (counted in ``stats["ttl_evictions"]``).  ``None`` disables aging.
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("cache TTL must be positive (or None)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.RLock()
        #: key -> (value, stored_at); stored_at is 0.0 when no TTL is set.
        self._data: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "ttl_evictions": 0}

    def _expired(self, stored_at: float) -> bool:
        return self.ttl_s is not None and self._clock() - stored_at > self.ttl_s

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            try:
                value, stored_at = self._data[key]
            except KeyError:
                self.stats["misses"] += 1
                return default
            if self._expired(stored_at):
                del self._data[key]
                self.stats["ttl_evictions"] += 1
                self.stats["misses"] += 1
                return default
            self._data.move_to_end(key)
            self.stats["hits"] += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            stored_at = self._clock() if self.ttl_s is not None else 0.0
            self._data[key] = (value, stored_at)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return an entry (honouring TTL), or ``default``."""
        with self._lock:
            try:
                value, stored_at = self._data.pop(key)
            except KeyError:
                return default
            if self._expired(stored_at):
                self.stats["ttl_evictions"] += 1
                return default
            return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                return False
            if self._expired(entry[1]):
                del self._data[key]
                self.stats["ttl_evictions"] += 1
                return False
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class _Entry:
    """Everything cached for one statement text."""

    __slots__ = (
        "statement",
        "plan",
        "has_plan",
        "plan_stamps",
        "plan_columnar",
        "columns",
        "rows",
        "result_stamps",
    )

    def __init__(self) -> None:
        self.statement: ast.Statement | None = None
        self.plan: PlanNode | None = None
        self.has_plan = False  # distinguishes "no entry" from a None plan
        #: ``{table: version}`` at plan-build time; None = no plan stored.
        #: An empty dict is valid forever (table-less ``SELECT 1``).
        self.plan_stamps: dict[str, int] | None = None
        #: Whether the stored plan carries columnar kernels — part of the
        #: plan's validity stamp, so toggling ``Engine.use_columnar`` can
        #: never serve a plan compiled for the other execution mode.
        self.plan_columnar = False
        self.columns: tuple[str, ...] | None = None
        self.rows: tuple[tuple[Any, ...], ...] | None = None
        self.result_stamps: dict[str, int] | None = None


class PlanCache:
    """LRU cache of parsed/planned/executed statements, keyed by text.

    ``max_result_rows`` bounds the per-entry memory of the materialized
    result layer: larger results are not cached (their AST and plan still
    are), so a handful of ``SELECT * FROM big_table`` statements cannot
    pin multiple copies of the database in memory.
    """

    def __init__(self, capacity: int = 256, max_result_rows: int = 10_000) -> None:
        self._entries: LruCache = LruCache(capacity)
        self.max_result_rows = max_result_rows
        #: Guards the read-check-store sequences and the stats counters —
        #: the engine is shared by concurrent NliService readers.
        self._lock = threading.RLock()
        self.stats = {
            "statement_hits": 0,
            "statement_misses": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "result_hits": 0,
            "result_misses": 0,
        }

    def _entry(self, text: str, create: bool = False) -> _Entry | None:
        entry = self._entries.get(text)
        if entry is None and create:
            entry = _Entry()
            self._entries.put(text, entry)
        return entry

    # -- parsed statements -------------------------------------------------

    def statement(self, text: str) -> ast.Statement | None:
        with self._lock:
            entry = self._entries.get(text)
            if entry is not None and entry.statement is not None:
                self.stats["statement_hits"] += 1
                return entry.statement
            self.stats["statement_misses"] += 1
            return None

    def store_statement(self, text: str, stmt: ast.Statement) -> None:
        with self._lock:
            entry = self._entry(text, create=True)
            assert entry is not None
            entry.statement = stmt

    # -- optimized plans ---------------------------------------------------

    def plan(
        self, text: str, version_of: VersionLookup, columnar: bool = False
    ) -> tuple[bool, PlanNode | None]:
        """Return ``(hit, plan)`` — the plan may legitimately be None.

        ``version_of`` maps a table name to its current stamp (or None when
        dropped); the hit requires every dependency stamp to match, and the
        stored plan's execution mode (``columnar``) to match the request.
        """
        with self._lock:
            entry = self._entries.get(text)
            if (
                entry is not None
                and entry.has_plan
                and entry.plan_columnar == columnar
                and _stamps_current(entry.plan_stamps, version_of)
            ):
                self.stats["plan_hits"] += 1
                return True, entry.plan
            self.stats["plan_misses"] += 1
            return False, None

    def store_plan(
        self,
        text: str,
        stamps: Mapping[str, int],
        plan: PlanNode | None,
        columnar: bool = False,
    ) -> None:
        """Cache ``plan`` with its dependency stamps (``{table: version}``)."""
        with self._lock:
            entry = self._entry(text, create=True)
            assert entry is not None
            entry.plan = plan
            entry.has_plan = True
            entry.plan_stamps = dict(stamps)
            entry.plan_columnar = columnar

    # -- materialized results ----------------------------------------------

    def result(
        self, text: str, version_of: VersionLookup
    ) -> tuple[tuple[str, ...], tuple[tuple[Any, ...], ...]] | None:
        with self._lock:
            entry = self._entries.get(text)
            if (
                entry is not None
                and entry.rows is not None
                and _stamps_current(entry.result_stamps, version_of)
            ):
                self.stats["result_hits"] += 1
                assert entry.columns is not None
                return entry.columns, entry.rows
            self.stats["result_misses"] += 1
            return None

    def store_result(
        self,
        text: str,
        stamps: Mapping[str, int],
        columns: list[str],
        rows: list[tuple[Any, ...]],
    ) -> None:
        with self._lock:
            if len(rows) > self.max_result_rows:
                # Also drop any previously cached (now stale) copy: stamps
                # are never reused, so it could never hit again — it would
                # just stay pinned while the entry's statement/plan layers
                # keep it warm in the LRU.
                entry = self._entries.get(text)
                if entry is not None:
                    entry.columns = None
                    entry.rows = None
                    entry.result_stamps = None
                return
            entry = self._entry(text, create=True)
            assert entry is not None
            entry.columns = tuple(columns)
            entry.rows = tuple(rows)
            entry.result_stamps = dict(stamps)

    # -- management --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            for key in self.stats:
                self.stats[key] = 0
