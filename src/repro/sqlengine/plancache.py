"""Statement-plan cache: the engine's prepared-statement layer.

One LRU maps statement text to everything the engine can reuse across
executions:

* the parsed AST — a pure function of the text, never invalidated;
* the optimized plan — valid only for the database version it was built
  against (any DDL/DML bumps :attr:`Database.version`);
* for top-level SELECTs, the materialized result rows — also version
  stamped, so a repeated question with no intervening mutation skips
  parse, plan, optimize *and* execution.

Invalidation is lazy: entries keep their stamp and are ignored (then
overwritten) once the database version has moved on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.planner import PlanNode


class LruCache:
    """Minimal LRU mapping (also used by the NLI prepared-question cache)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


class _Entry:
    """Everything cached for one statement text."""

    __slots__ = (
        "statement",
        "plan",
        "has_plan",
        "plan_version",
        "columns",
        "rows",
        "result_version",
    )

    def __init__(self) -> None:
        self.statement: ast.Statement | None = None
        self.plan: PlanNode | None = None
        self.has_plan = False  # distinguishes "no entry" from a None plan
        self.plan_version: int | None = None
        self.columns: tuple[str, ...] | None = None
        self.rows: tuple[tuple[Any, ...], ...] | None = None
        self.result_version: int | None = None


class PlanCache:
    """LRU cache of parsed/planned/executed statements, keyed by text.

    ``max_result_rows`` bounds the per-entry memory of the materialized
    result layer: larger results are not cached (their AST and plan still
    are), so a handful of ``SELECT * FROM big_table`` statements cannot
    pin multiple copies of the database in memory.
    """

    def __init__(self, capacity: int = 256, max_result_rows: int = 10_000) -> None:
        self._entries: LruCache = LruCache(capacity)
        self.max_result_rows = max_result_rows
        self.stats = {
            "statement_hits": 0,
            "statement_misses": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "result_hits": 0,
            "result_misses": 0,
        }

    def _entry(self, text: str, create: bool = False) -> _Entry | None:
        entry = self._entries.get(text)
        if entry is None and create:
            entry = _Entry()
            self._entries.put(text, entry)
        return entry

    # -- parsed statements -------------------------------------------------

    def statement(self, text: str) -> ast.Statement | None:
        entry = self._entries.get(text)
        if entry is not None and entry.statement is not None:
            self.stats["statement_hits"] += 1
            return entry.statement
        self.stats["statement_misses"] += 1
        return None

    def store_statement(self, text: str, stmt: ast.Statement) -> None:
        entry = self._entry(text, create=True)
        assert entry is not None
        entry.statement = stmt

    # -- optimized plans ---------------------------------------------------

    def plan(self, text: str, version: int) -> tuple[bool, PlanNode | None]:
        """Return ``(hit, plan)`` — the plan may legitimately be None."""
        entry = self._entries.get(text)
        if entry is not None and entry.has_plan and entry.plan_version == version:
            self.stats["plan_hits"] += 1
            return True, entry.plan
        self.stats["plan_misses"] += 1
        return False, None

    def store_plan(self, text: str, version: int, plan: PlanNode | None) -> None:
        entry = self._entry(text, create=True)
        assert entry is not None
        entry.plan = plan
        entry.has_plan = True
        entry.plan_version = version

    # -- materialized results ----------------------------------------------

    def result(
        self, text: str, version: int
    ) -> tuple[tuple[str, ...], tuple[tuple[Any, ...], ...]] | None:
        entry = self._entries.get(text)
        if (
            entry is not None
            and entry.rows is not None
            and entry.result_version == version
        ):
            self.stats["result_hits"] += 1
            assert entry.columns is not None
            return entry.columns, entry.rows
        self.stats["result_misses"] += 1
        return None

    def store_result(
        self,
        text: str,
        version: int,
        columns: list[str],
        rows: list[tuple[Any, ...]],
    ) -> None:
        if len(rows) > self.max_result_rows:
            return
        entry = self._entry(text, create=True)
        assert entry is not None
        entry.columns = tuple(columns)
        entry.rows = tuple(rows)
        entry.result_version = version

    # -- management --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        for key in self.stats:
            self.stats[key] = 0
