"""Logical access plans for the FROM/WHERE part of a SELECT.

The planner turns the relational core of a statement (table refs, joins and
the WHERE predicate) into a tree of plan nodes.  Grouping, projection,
ordering and limiting are handled above the plan by the executor, since
they need full expression semantics over the produced row stream.

Plan nodes:

* :class:`ScanNode` — one base table under a binding, with optional pushed
  filters and index hints chosen by the optimizer.
* :class:`JoinNode` — nested-loop join (INNER/LEFT/CROSS) with a condition.
* :class:`HashJoinNode` — equi-join specialisation created by the optimizer.
* :class:`FilterNode` — residual predicate on a sub-plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import PlanError, UnknownTableError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.database import Database


@dataclass
class PlanNode:
    """Base class for plan nodes."""

    def bindings(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class ScanNode(PlanNode):
    """Scan of ``table_name`` under alias ``binding``.

    ``eq_filters`` / ``range_filters`` are index-usable predicates installed
    by the optimizer; ``residual_filters`` are evaluated per row.
    """

    table_name: str
    binding: str
    eq_filters: list[tuple[str, Any]] = field(default_factory=list)
    range_filters: list[tuple[str, str, Any]] = field(default_factory=list)
    in_filters: list[tuple[str, tuple[Any, ...]]] = field(default_factory=list)
    residual_filters: list[ast.Expr] = field(default_factory=list)
    #: True when the executor attached a columnar kernel to this node
    #: (set by :func:`repro.sqlengine.columnar.install_kernels`).
    columnar: bool = field(default=False, compare=False)

    def bindings(self) -> list[str]:
        return [self.binding]

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        hints = []
        if self.eq_filters:
            hints.append("eq=" + ",".join(c for c, _ in self.eq_filters))
        if self.range_filters:
            hints.append("range=" + ",".join(c for c, _, _ in self.range_filters))
        if self.in_filters:
            hints.append("in=" + ",".join(c for c, _ in self.in_filters))
        if self.residual_filters:
            hints.append(f"residual={len(self.residual_filters)}")
        if self.columnar:
            hints.append("columnar=true")
        tail = f" [{' '.join(hints)}]" if hints else ""
        return f"{pad}Scan({self.table_name} AS {self.binding}){tail}"


@dataclass
class JoinNode(PlanNode):
    """Nested-loop join of two sub-plans."""

    left: PlanNode
    right: PlanNode
    condition: ast.Expr | None
    kind: str = "INNER"  # INNER | LEFT | CROSS

    def bindings(self) -> list[str]:
        return self.left.bindings() + self.right.bindings()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        cond = self.condition.render() if self.condition is not None else "TRUE"
        return (
            f"{pad}NestedLoopJoin[{self.kind}] ON {cond}\n"
            f"{self.left.describe(indent + 1)}\n{self.right.describe(indent + 1)}"
        )


@dataclass
class HashJoinNode(PlanNode):
    """Equi-join evaluated by building a hash table on one side.

    ``build`` names the side the hash table is built on; the optimizer
    picks the side with the smaller estimated cardinality (``est_left`` /
    ``est_right``, from table statistics).  LEFT joins always build right,
    because probing must iterate the preserved side.
    """

    left: PlanNode
    right: PlanNode
    left_key: ast.Expr
    right_key: ast.Expr
    kind: str = "INNER"  # INNER | LEFT
    residual: ast.Expr | None = None
    build: str = "right"  # left | right
    est_left: float | None = None
    est_right: float | None = None
    columnar: bool = field(default=False, compare=False)

    def bindings(self) -> list[str]:
        return self.left.bindings() + self.right.bindings()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        res = f" residual={self.residual.render()}" if self.residual else ""
        est = ""
        if self.est_left is not None and self.est_right is not None:
            est = f" est={self.est_left:.0f}x{self.est_right:.0f}"
        col = " columnar=true" if self.columnar else ""
        return (
            f"{pad}HashJoin[{self.kind} build={self.build}{est}{col}] "
            f"{self.left_key.render()} = {self.right_key.render()}{res}\n"
            f"{self.left.describe(indent + 1)}\n{self.right.describe(indent + 1)}"
        )


@dataclass
class ReorderNode(PlanNode):
    """Presents a reordered join's output in the original binding order.

    The statistics-driven join reordering changes which table feeds which
    side of the join tree; this wrapper restores the query's declared
    column order (so ``SELECT *`` output is unchanged) by permuting each
    row's per-binding segments.
    """

    child: PlanNode
    order: tuple[str, ...]  # binding order to present
    columnar: bool = field(default=False, compare=False)

    def bindings(self) -> list[str]:
        return list(self.order)

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        col = " [columnar=true]" if self.columnar else ""
        return (
            f"{pad}Reorder({', '.join(self.order)}){col}\n"
            f"{self.child.describe(indent + 1)}"
        )


@dataclass
class FilterNode(PlanNode):
    """Residual predicate over a sub-plan."""

    child: PlanNode
    predicate: ast.Expr
    columnar: bool = field(default=False, compare=False)

    def bindings(self) -> list[str]:
        return self.child.bindings()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        col = " [columnar=true]" if self.columnar else ""
        return (
            f"{pad}Filter({self.predicate.render()}){col}\n"
            f"{self.child.describe(indent + 1)}"
        )


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op.upper() == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """Re-assemble conjuncts into one AND expression (or None)."""
    if not conjuncts:
        return None
    out = conjuncts[0]
    for conjunct in conjuncts[1:]:
        out = ast.BinaryOp("AND", out, conjunct)
    return out


def expr_bindings(expr: ast.Expr, scope_bindings: set[str]) -> set[str] | None:
    """The set of table bindings an expression references.

    Returns ``None`` when the expression contains a subquery or an
    unqualified column (either makes pushdown decisions unsafe).
    """
    found: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, (ast.InSubquery, ast.ScalarSubquery, ast.Exists)):
            return None
        if isinstance(node, ast.ColumnRef):
            if node.table is None:
                return None
            if node.table not in scope_bindings:
                return None
            found.add(node.table)
    return found


def qualify_expr(expr: ast.Expr, column_bindings: dict[str, list[str]]) -> ast.Expr:
    """Rewrite unqualified column refs to qualified ones when unambiguous.

    Qualification never descends into subqueries — their inner scopes may
    shadow outer names, and correlated refs resolve at execution time.
    """
    if isinstance(expr, ast.ColumnRef):
        if expr.table is None:
            bindings = column_bindings.get(expr.name.lower(), [])
            if len(bindings) == 1:
                return ast.ColumnRef(expr.name, table=bindings[0])
        return expr
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, qualify_expr(expr.operand, column_bindings))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            qualify_expr(expr.left, column_bindings),
            qualify_expr(expr.right, column_bindings),
        )
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(qualify_expr(arg, column_bindings) for arg in expr.args),
            expr.distinct,
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(qualify_expr(expr.operand, column_bindings), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(
            qualify_expr(expr.operand, column_bindings),
            qualify_expr(expr.low, column_bindings),
            qualify_expr(expr.high, column_bindings),
            expr.negated,
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            qualify_expr(expr.operand, column_bindings),
            tuple(qualify_expr(item, column_bindings) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(
            qualify_expr(expr.operand, column_bindings), expr.subquery, expr.negated
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            qualify_expr(expr.operand, column_bindings),
            qualify_expr(expr.pattern, column_bindings),
            expr.negated,
        )
    return expr


def build_plan(select: ast.Select, database: Database) -> PlanNode | None:
    """Build the naive (unoptimised) access plan for ``select``.

    Returns ``None`` for table-less selects (e.g. ``SELECT 1``).
    """
    if select.from_table is None:
        if select.joins:
            raise PlanError("JOIN without FROM")
        return None
    seen: set[str] = set()
    column_bindings: dict[str, list[str]] = {}

    def make_scan(ref: ast.TableRef) -> ScanNode:
        if not database.has_table(ref.name):
            raise UnknownTableError(f"no table named {ref.name!r}")
        binding = ref.binding
        if binding in seen:
            raise PlanError(f"duplicate table binding {binding!r}")
        seen.add(binding)
        for column in database.table(ref.name).schema.column_names:
            column_bindings.setdefault(column, []).append(binding)
        return ScanNode(ref.name, binding)

    scans = [make_scan(select.from_table)]
    scans.extend(make_scan(join.table) for join in select.joins)

    plan: PlanNode = scans[0]
    for scan, join in zip(scans[1:], select.joins):
        condition = (
            qualify_expr(join.condition, column_bindings)
            if join.condition is not None
            else None
        )
        plan = JoinNode(plan, scan, condition, kind=join.kind)
    if select.where is not None:
        plan = FilterNode(plan, qualify_expr(select.where, column_bindings))
    return plan
