"""Result sets returned by the engine."""

from __future__ import annotations

from typing import Any, Iterator


class ResultSet:
    """Column names plus row tuples, with small conveniences.

    >>> rs = ResultSet(["n"], [(1,), (2,)])
    >>> rs.scalar()
    Traceback (most recent call last):
    ...
    ValueError: scalar() needs exactly one row, got 2
    >>> rs.column("n")
    [1, 2]
    """

    def __init__(self, columns: list[str], rows: list[tuple[Any, ...]]) -> None:
        self.columns = list(columns)
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def first(self) -> tuple[Any, ...] | None:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1:
            raise ValueError(f"scalar() needs exactly one row, got {len(self.rows)}")
        if len(self.rows[0]) != 1:
            raise ValueError(
                f"scalar() needs exactly one column, got {len(self.rows[0])}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Any]:
        try:
            index = self.columns.index(name)
        except ValueError as exc:
            raise ValueError(f"no column {name!r} in result") from exc
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def answer_set(self) -> frozenset[tuple[Any, ...]]:
        """Order-insensitive multiset-free view used for accuracy scoring.

        Floats are rounded to 6 places so equivalent aggregates compare equal.
        """
        normalised = []
        for row in self.rows:
            normalised.append(
                tuple(
                    round(cell, 6) if isinstance(cell, float) else cell for cell in row
                )
            )
        return frozenset(normalised)

    def pretty(self, max_rows: int = 20) -> str:
        """ASCII rendering for examples and reports."""
        shown = self.rows[:max_rows]
        cells = [[("" if c is None else str(c)) for c in row] for row in shown]
        widths = [len(name) for name in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(name.ljust(w) for name, w in zip(self.columns, widths))
        lines = [header, sep]
        for row in cells:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns!r}, rows={len(self.rows)})"
