"""Schema objects: columns, table schemas, foreign keys.

A :class:`TableSchema` is immutable after construction and validates itself
eagerly so that malformed schemas fail at definition time, not at query time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.sqlengine.types import SqlType

_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def validate_identifier(name: str, kind: str = "identifier") -> str:
    """Validate and normalise a table/column identifier (lower-cased).

    Identifiers must start with a letter and contain only ``[a-z0-9_]``.
    """
    if not name:
        raise SchemaError(f"empty {kind}")
    lowered = name.lower()
    if not lowered[0].isalpha():
        raise SchemaError(f"{kind} {name!r} must start with a letter")
    if not set(lowered) <= _IDENT_CHARS:
        raise SchemaError(f"{kind} {name!r} contains invalid characters")
    return lowered


@dataclass(frozen=True)
class Column:
    """A typed column definition.

    ``comment`` carries the human-readable gloss used by the lexicon builder
    to generate natural-language names for the column.
    """

    name: str
    sql_type: SqlType
    nullable: bool = True
    comment: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", validate_identifier(self.name, "column name"))


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign key: ``column`` references ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "column", validate_identifier(self.column, "fk column")
        )
        object.__setattr__(
            self, "ref_table", validate_identifier(self.ref_table, "fk table")
        )
        object.__setattr__(
            self, "ref_column", validate_identifier(self.ref_column, "fk ref column")
        )


@dataclass(frozen=True)
class TableSchema:
    """Immutable description of one table.

    >>> ts = TableSchema("ship", [Column("id", SqlType.INT), Column("name", SqlType.TEXT)],
    ...                  primary_key="id")
    >>> ts.column("name").sql_type
    <SqlType.TEXT: 'TEXT'>
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: str | None = None
    foreign_keys: tuple[ForeignKey, ...] = field(default_factory=tuple)
    comment: str = ""

    def __init__(
        self,
        name: str,
        columns: list[Column] | tuple[Column, ...],
        primary_key: str | None = None,
        foreign_keys: list[ForeignKey] | tuple[ForeignKey, ...] = (),
        comment: str = "",
    ) -> None:
        object.__setattr__(self, "name", validate_identifier(name, "table name"))
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(
            self,
            "primary_key",
            validate_identifier(primary_key, "primary key") if primary_key else None,
        )
        object.__setattr__(self, "foreign_keys", tuple(foreign_keys))
        object.__setattr__(self, "comment", comment)
        self._validate()

    def _validate(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(col.name)
        if self.primary_key is not None and self.primary_key not in seen:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in seen:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of {self.name!r}"
                )

    # -- lookups -----------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self.column_names

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for col in self.columns:
            if col.name == lowered:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, col in enumerate(self.columns):
            if col.name == lowered:
                return i
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        lowered = column.lower()
        for fk in self.foreign_keys:
            if fk.column == lowered:
                return fk
        return None
