"""Immutable, version-stamped snapshot views over a database (MVCC reads).

:meth:`Database.snapshot` pins the current storage of every table and
returns a :class:`DatabaseSnapshot` — a read-only object exposing the
subset of the :class:`~repro.sqlengine.database.Database` interface that
the planner, optimizer and executor consult on the SELECT path.  Capture
is O(number of tables): each :class:`TableSnapshot` *shares* the live row
list, indexes and statistics; the first mutation after the pin detaches
by cloning them (copy-on-write, see ``Table._materialise_for_write``), so

* readers never block on writers — a SELECT pinned to a snapshot keeps
  scanning its (now frozen) storage while a bulk UPDATE commits;
* readers never see torn state — capture and mutation are mutually
  exclusive under the database-wide mutation lock (shared by every
  table), so a snapshot is one atomic, statement-consistent cut of the
  whole database — never a mix of two commits across tables;
* nothing leaks — pins are released explicitly (``close()`` /
  context-manager exit) *and* by a GC finalizer, so a reader that dies
  mid-scan drops its pin as soon as the snapshot object is collected.
  A released (or collected) snapshot costs nothing; an unreleased one
  merely makes the next write pay one extra clone.

Version stamps are recorded at capture time: ``table_version`` /
``table_versions`` report the pinned stamps, so plan-cache entries built
against a snapshot are stamped with *its* versions and can never serve
rows across versions (the stamp comparison in
:class:`~repro.sqlengine.plancache.PlanCache` fails once the live table
moves on).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.errors import UnknownTableError
from repro.sqlengine.indexes import HashIndex, SortedIndex
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.statistics import TableStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.database import Database
    from repro.sqlengine.table import Table

__all__ = ["DatabaseSnapshot", "SharedSnapshot", "TableSnapshot"]


class TableSnapshot:
    """Read-only view of one table's storage at a point in time.

    Mirrors the read interface of :class:`~repro.sqlengine.table.Table`
    (rows, row ids, index lookups, statistics), which is everything the
    SELECT path touches.  Constructed by :meth:`Table.capture` under the
    table's write lock; the pin it holds is released by :meth:`release`
    or by garbage collection of the owning :class:`DatabaseSnapshot`.
    """

    __slots__ = (
        "schema",
        "statistics",
        "_rows",
        "_live_count",
        "_hash_indexes",
        "_sorted_indexes",
        "_pk_index",
        "_version",
        "_release_cb",
        "__weakref__",
    )

    def __init__(self, table: Table) -> None:
        # Called with table._write_lock held: the captured references are
        # a consistent statement boundary, and the pin counter was already
        # incremented so the next mutation clones instead of mutating them.
        self.schema: TableSchema = table.schema
        self.statistics: TableStatistics = table.statistics
        self._rows: list[tuple[Any, ...] | None] = table._rows
        self._live_count: int = table._live_count
        self._hash_indexes: dict[str, HashIndex] = table._hash_indexes
        self._sorted_indexes: dict[str, SortedIndex] = table._sorted_indexes
        self._pk_index: HashIndex | None = table._pk_index
        self._version: int = table._version
        generation = table._generation
        self._release_cb = lambda: table._release_pin(generation)

    def release(self) -> None:
        """Drop the storage pin (idempotent)."""
        callback, self._release_cb = self._release_cb, None
        if callback is not None:
            callback()

    # -- read interface (mirrors Table) -------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def version(self) -> int:
        """The table's version stamp at capture time."""
        return self._version

    def __len__(self) -> int:
        return self._live_count

    def rows(self) -> Iterator[tuple[Any, ...]]:
        return (row for row in self._rows if row is not None)

    def rows_with_ids(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        return ((i, row) for i, row in enumerate(self._rows) if row is not None)

    def batch_storage(self) -> tuple[list, "range | list[int]"]:
        """Pinned row storage plus live positions, for columnar scans."""
        rows = self._rows
        if self._live_count == len(rows):
            return rows, range(len(rows))
        return rows, [i for i, row in enumerate(rows) if row is not None]

    def row_by_id(self, row_id: int) -> tuple[Any, ...] | None:
        if 0 <= row_id < len(self._rows):
            return self._rows[row_id]
        return None

    def hash_index(self, column: str) -> HashIndex | None:
        lowered = column.lower()
        if self._pk_index is not None and lowered == self.schema.primary_key:
            return self._pk_index
        return self._hash_indexes.get(lowered)

    def sorted_index(self, column: str) -> SortedIndex | None:
        return self._sorted_indexes.get(column.lower())

    def lookup_equal(self, column: str, value: Any) -> list[tuple[Any, ...]]:
        index = self.hash_index(column)
        pos = self.schema.column_index(column)
        if index is not None:
            out = []
            for row_id in index.lookup(value):
                row = self.row_by_id(row_id)
                if row is not None:
                    out.append(row)
            return out
        return [row for row in self.rows() if row[pos] == value]

    def column_values(self, column: str) -> Iterator[Any]:
        pos = self.schema.column_index(column)
        return (row[pos] for row in self.rows())


class DatabaseSnapshot:
    """A pinned, immutable view of a whole database.

    Duck-types the read side of :class:`~repro.sqlengine.database.Database`
    — ``table()`` returns :class:`TableSnapshot` objects, and the version
    accessors report the stamps recorded at capture.  Usable as a context
    manager; :meth:`close` releases every table pin early, and a GC
    finalizer does the same for snapshots that are simply dropped.

    >>> from repro.sqlengine.database import Database
    >>> from repro.sqlengine.schema import Column, TableSchema
    >>> from repro.sqlengine.types import SqlType
    >>> db = Database()
    >>> _ = db.create_table(TableSchema("t", [Column("a", SqlType.INT)]))
    >>> _ = db.insert("t", [1])
    >>> with db.snapshot() as snap:
    ...     _ = db.insert("t", [2])           # commits after the pin
    ...     (len(snap.table("t")), len(db.table("t")))
    (1, 2)
    """

    def __init__(self, database: Database) -> None:
        self.name = database.name
        # Capture under the database-wide mutation lock: every table's
        # writer path holds the same (reentrant) lock, so the snapshot is
        # one atomic cut across ALL tables — it can never contain commit
        # N's state of one table and commit N+1's of another — and the
        # version stamps read here describe exactly the captured
        # contents.  Writers are serialized above this (the service's
        # commit lock), so the wait is bounded by one statement.
        with database._mutation_lock:
            self._tables: dict[str, TableSnapshot] = {
                name: table.capture()
                for name, table in database._tables.items()
            }
            self._version: int = database.version
            self._catalog_version: int = database.catalog_version
        # One release per pinned table; weakref.finalize also runs on GC,
        # so an abandoned snapshot (reader died mid-scan) cannot leak pins.
        self._finalizer = weakref.finalize(
            self, _release_all, list(self._tables.values())
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release all table pins now (idempotent; also runs on GC)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> DatabaseSnapshot:
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- read interface (mirrors Database) -----------------------------------

    @property
    def version(self) -> int:
        """The database clock at capture time."""
        return self._version

    @property
    def catalog_version(self) -> int:
        return self._catalog_version

    @property
    def stamp(self) -> tuple[int, int]:
        """Compact identity of this snapshot's data version: one write (to
        any table) or catalog DDL anywhere changes it.  Used by response
        caches that key serialized answers by data version."""
        return (self._catalog_version, self._version)

    def table_version(self, name: str) -> int | None:
        table = self._tables.get(name.lower())
        return None if table is None else table.version

    def table_versions(self) -> dict[str, int]:
        return {name: table.version for name, table in self._tables.items()}

    def table(self, name: str) -> TableSnapshot:
        lowered = name.lower()
        if lowered not in self._tables:
            raise UnknownTableError(f"no table named {name!r}")
        return self._tables[lowered]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> Iterable[TableSnapshot]:
        return self._tables.values()

    def schemas(self) -> list[TableSchema]:
        return [t.schema for t in self._tables.values()]

    def row_count(self, table_name: str) -> int:
        return len(self.table(table_name))

    def statistics(self, table_name: str) -> TableStatistics:
        return self.table(table_name).statistics


class SharedSnapshot:
    """A non-owning view over a :class:`DatabaseSnapshot` someone else owns.

    While a multi-statement transaction is open, :meth:`Database.snapshot`
    hands every reader this proxy over the transaction's pre-BEGIN overlay
    snapshot instead of pinning the live (uncommitted) storage — so
    concurrent readers observe the last committed state, never a
    transaction in flight.  ``close()`` is a no-op: the pins belong to the
    transaction, which drops its reference at COMMIT/ROLLBACK (the last
    reader's proxy then lets GC release them).
    """

    __slots__ = ("_inner",)

    def __init__(self, inner: DatabaseSnapshot) -> None:
        self._inner = inner

    def close(self) -> None:
        """No-op: the owning transaction controls the inner pins."""

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def __enter__(self) -> "SharedSnapshot":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._inner, attr)


def _release_all(tables: list[TableSnapshot]) -> None:
    for table in tables:
        table.release()
