"""Incremental table statistics for the cost-based optimizer.

Every :class:`~repro.sqlengine.table.Table` owns a :class:`TableStatistics`
that is updated on each insert/delete/update, so the optimizer can consult
row counts, per-column distinct counts, null counts and min/max bounds
without ever scanning.

Selectivity estimation is **histogram-based**: each column maintains a
bounded summary — an equi-depth bucket histogram plus a most-common-values
(MCV) list with exact counts — rebuilt lazily from the maintained value
counts.  Equality estimates are exact for MCV values and uniform-within-
bucket otherwise; range and BETWEEN estimates walk the buckets, counting
full buckets outright and interpolating inside the boundary bucket.  Text
columns bucket like any other sortable type, so string ranges estimate
from data instead of a blanket guess.

The exact value→count substrate is itself bounded: past
:data:`MAX_TRACKED_VALUES` distinct values a column *compresses* — the
histogram/MCV summary becomes authoritative and is maintained
approximately in place, so memory stays O(MAX_TRACKED_VALUES + buckets)
no matter how wide the column grows.  Until compression, ``frequency()``
stays exact (and the maintenance tests rely on that); after it, frequency
answers are estimates.

Selectivities are returned in ``[0, 1]`` and multiply: the optimizer uses
them to order multi-join plans smallest-first and to pick hash-join build
sides.  :func:`estimate_equi_join_rows` is the join-cardinality companion:
``|L ⋈ R| = |L|·|R| / max(d(L.key), d(R.key))``, with the optimizer
supplying distinct counts sharpened by PK/FK metadata.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.sqlengine.schema import TableSchema

#: Fallback selectivity for predicates the estimator cannot classify
#: (LIKE, inequality, subqueries, ...) — the classic System R guess.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Equi-depth bucket count for per-column histograms.
HISTOGRAM_BUCKETS = 32

#: Most-common-value entries kept with exact counts alongside the buckets.
MCV_ENTRIES = 16

#: Distinct-value bound on the exact value→count substrate; beyond it the
#: column compresses to its histogram/MCV summary (see module docstring).
MAX_TRACKED_VALUES = 16_384


class Histogram:
    """Bounded equi-depth summary of one column's non-null values.

    ``mcv`` maps the most common values to exact row counts; ``buckets``
    cover the rest as ``[low, high, rows, distinct]`` spans, sorted and
    non-overlapping.  All row-estimate methods raise ``TypeError`` when
    the probe value is not comparable with the stored bounds — callers
    translate that into their own fallback.
    """

    __slots__ = ("buckets", "mcv")

    def __init__(
        self, buckets: list[list[Any]], mcv: dict[Any, int]
    ) -> None:
        self.buckets = buckets
        self.mcv = mcv

    @property
    def total_rows(self) -> float:
        return float(sum(self.mcv.values()) + sum(b[2] for b in self.buckets))

    def bucket_bounds(self) -> list[tuple[Any, Any, int, int]]:
        """``(low, high, rows, distinct)`` per bucket, for tests/diagnostics."""
        return [(b[0], b[1], b[2], b[3]) for b in self.buckets]

    # -- row estimates ------------------------------------------------------

    def eq_rows(self, value: Any) -> float:
        """Estimated rows equal to ``value`` (exact for MCV entries)."""
        count = self.mcv.get(value)
        if count is not None:
            return float(count)
        for low, high, rows, distinct in self.buckets:
            if low <= value <= high:
                return rows / max(1, distinct)
        return 0.0

    def _rows_below(self, value: Any, inclusive: bool) -> float:
        out = 0.0
        for entry, count in self.mcv.items():
            if entry < value or (inclusive and entry == value):
                out += count
        for low, high, rows, _distinct in self.buckets:
            if high < value or (inclusive and high == value):
                out += rows
            elif low < value:
                # Boundary bucket: interpolate for numeric bounds, split
                # in half otherwise (strings bucket but do not interpolate).
                if (
                    isinstance(low, (int, float))
                    and isinstance(high, (int, float))
                    and isinstance(value, (int, float))
                    and high > low
                ):
                    fraction = (value - low) / (high - low)
                    out += rows * max(0.0, min(1.0, fraction))
                else:
                    out += rows * 0.5
        return out

    def cmp_rows(self, op: str, value: Any) -> float:
        """Estimated rows satisfying ``column <op> value``."""
        if op == "<":
            return self._rows_below(value, inclusive=False)
        if op == "<=":
            return self._rows_below(value, inclusive=True)
        if op == ">":
            return max(0.0, self.total_rows - self._rows_below(value, True))
        if op == ">=":
            return max(0.0, self.total_rows - self._rows_below(value, False))
        raise ValueError(f"unknown range operator {op!r}")

    def between_rows(self, low: Any, high: Any) -> float:
        return max(
            0.0, self._rows_below(high, True) - self._rows_below(low, False)
        )

    # -- approximate in-place maintenance (compressed columns) --------------

    def add_approx(self, value: Any) -> None:
        """Count one more row, widening an edge bucket when out of range."""
        try:
            count = self.mcv.get(value)
            if count is not None:
                self.mcv[value] = count + 1
                return
            if not self.buckets:
                self.buckets.append([value, value, 1, 1])
                return
            for bucket in self.buckets:
                if bucket[0] <= value <= bucket[1]:
                    bucket[2] += 1
                    return
            first, last = self.buckets[0], self.buckets[-1]
            if value < first[0]:
                first[0] = value
                first[2] += 1
            elif value > last[1]:
                last[1] = value
                last[2] += 1
            else:  # gap between buckets: extend the next bucket downward
                for bucket in self.buckets:
                    if value <= bucket[1]:
                        bucket[0] = min(bucket[0], value)
                        bucket[2] += 1
                        return
        except TypeError:
            return  # incomparable stray value: estimates-only layer, ignore

    def remove_approx(self, value: Any) -> None:
        """Discount one row; bucket bounds stay (harmless upper bounds)."""
        try:
            count = self.mcv.get(value)
            if count is not None:
                if count <= 1:
                    del self.mcv[value]
                else:
                    self.mcv[value] = count - 1
                return
            for bucket in self.buckets:
                if bucket[0] <= value <= bucket[1]:
                    bucket[2] = max(0, bucket[2] - 1)
                    return
        except TypeError:
            return

    def clone(self) -> "Histogram":
        return Histogram([list(b) for b in self.buckets], dict(self.mcv))


def _build_histogram(
    counts: dict[Any, int],
    n_buckets: int = HISTOGRAM_BUCKETS,
    mcv_entries: int = MCV_ENTRIES,
) -> Histogram | None:
    """Equi-depth histogram + MCV list from exact value counts.

    Returns ``None`` when the values are not mutually sortable (mixed
    incomparable types) — callers then keep their legacy fallbacks.
    """
    if not counts:
        return Histogram([], {})
    try:
        items = sorted(counts.items())
    except TypeError:
        return None
    if len(items) <= mcv_entries:
        return Histogram([], dict(counts))
    total = sum(count for _, count in items)
    average = total / len(items)
    # MCVs: values clearly above the average frequency, most frequent
    # first; rank-in-sorted-order breaks ties deterministically.
    ranked = sorted(
        range(len(items)), key=lambda i: (-items[i][1], i)
    )[:mcv_entries]
    mcv_positions = {i for i in ranked if items[i][1] > average}
    mcv = {items[i][0]: items[i][1] for i in mcv_positions}
    rest = [items[i] for i in range(len(items)) if i not in mcv_positions]
    buckets: list[list[Any]] = []
    if rest:
        rest_total = sum(count for _, count in rest)
        depth = max(1.0, rest_total / n_buckets)
        acc_rows = 0
        acc_distinct = 0
        low = rest[0][0]
        for value, count in rest:
            if acc_rows == 0:
                low = value
            acc_rows += count
            acc_distinct += 1
            if acc_rows >= depth and len(buckets) < n_buckets - 1:
                buckets.append([low, value, acc_rows, acc_distinct])
                acc_rows = 0
                acc_distinct = 0
        if acc_rows:
            buckets.append([low, rest[-1][0], acc_rows, acc_distinct])
    return Histogram(buckets, mcv)


def estimate_equi_join_rows(
    left_rows: float,
    right_rows: float,
    left_distinct: float | None,
    right_distinct: float | None,
) -> float:
    """Classic equi-join cardinality: ``|L|·|R| / max(d_l, d_r)``.

    Falls back to ``max(|L|, |R|)`` when neither key's distinct count is
    known.  The optimizer sharpens the distinct counts with PK/FK
    metadata: a PK key has exactly ``row_count`` distincts, and an FK
    key's distincts are capped by the parent's row count.
    """
    d = max(left_distinct or 0.0, right_distinct or 0.0)
    if d <= 0.0:
        return max(left_rows, right_rows)
    return left_rows * right_rows / d


class ColumnStats:
    """Distinct/null counts, min/max bounds and a histogram for one column.

    Maintained incrementally: :meth:`add` / :meth:`remove` are called by the
    owning table for every row mutation.  Min/max are recomputed lazily only
    when a deletion removes the current extremum; the histogram is rebuilt
    lazily on the next estimate after any mutation.  Past
    :attr:`max_tracked` distinct values the column compresses (see module
    docstring): ``_counts`` shrinks to the MCV entries and the histogram is
    maintained approximately in place.
    """

    __slots__ = (
        "_counts",
        "_nulls",
        "_non_null",
        "_min",
        "_max",
        "_extrema_dirty",
        "_hist",
        "_hist_dirty",
        "_compressed",
        "_distinct_est",
        "_new_ratio",
    )

    #: Class-level so tests can lower it to exercise compression cheaply.
    max_tracked = MAX_TRACKED_VALUES

    def __init__(self) -> None:
        self._counts: dict[Any, int] = {}
        self._nulls = 0
        self._non_null = 0
        self._min: Any = None
        self._max: Any = None
        self._extrema_dirty = False
        self._hist: Histogram | None = None
        self._hist_dirty = True
        self._compressed = False
        self._distinct_est = 0.0
        self._new_ratio = 1.0

    # -- maintenance -------------------------------------------------------

    def add(self, value: Any) -> None:
        if value is None:
            self._nulls += 1
            return
        self._non_null += 1
        if not self._extrema_dirty:
            try:
                if self._min is None or value < self._min:
                    self._min = value
                if self._max is None or value > self._max:
                    self._max = value
            except TypeError:  # mixed types; fall back to lazy recompute
                self._extrema_dirty = True
        if self._compressed:
            count = self._counts.get(value)
            if count is not None:
                self._counts[value] = count + 1
            else:
                assert self._hist is not None
                self._hist.add_approx(value)
                self._distinct_est += self._new_ratio
            return
        self._counts[value] = self._counts.get(value, 0) + 1
        self._hist_dirty = True
        if len(self._counts) > self.max_tracked:
            self._compress()

    def remove(self, value: Any) -> None:
        if value is None:
            self._nulls = max(0, self._nulls - 1)
            return
        if self._compressed:
            self._non_null = max(0, self._non_null - 1)
            count = self._counts.get(value)
            if count is not None:
                if count <= 1:
                    del self._counts[value]
                else:
                    self._counts[value] = count - 1
            else:
                assert self._hist is not None
                self._hist.remove_approx(value)
                self._distinct_est = max(
                    float(len(self._counts)), self._distinct_est - self._new_ratio
                )
            if value == self._min or value == self._max:
                self._extrema_dirty = True
            return
        count = self._counts.get(value)
        if count is None:
            return
        self._non_null = max(0, self._non_null - 1)
        self._hist_dirty = True
        if count <= 1:
            del self._counts[value]
            # The extremum may have left the column; recompute on demand.
            if value == self._min or value == self._max:
                self._extrema_dirty = True
        else:
            self._counts[value] = count - 1

    def _compress(self) -> None:
        """Swap the exact substrate for its bounded histogram summary."""
        hist = _build_histogram(self._counts)
        if hist is None:
            return  # incomparable values cannot bucket; keep exact counts
        self._distinct_est = float(len(self._counts))
        self._new_ratio = (
            min(1.0, len(self._counts) / self._non_null) if self._non_null else 1.0
        )
        self._hist = hist
        self._hist_dirty = False
        self._counts = hist.mcv  # the retained exact entries, shared
        self._compressed = True

    def _refresh_extrema(self) -> None:
        if self._compressed:
            assert self._hist is not None
            candidates = list(self._counts)
            if self._hist.buckets:
                candidates.append(self._hist.buckets[0][0])
                candidates.append(self._hist.buckets[-1][1])
            try:
                self._min = min(candidates) if candidates else None
                self._max = max(candidates) if candidates else None
            except TypeError:
                self._min = self._max = None
            self._extrema_dirty = False
            return
        if not self._counts:
            self._min = self._max = None
        else:
            try:
                self._min = min(self._counts)
                self._max = max(self._counts)
            except TypeError:
                self._min = self._max = None
        self._extrema_dirty = False

    # -- accessors ---------------------------------------------------------

    @property
    def compressed(self) -> bool:
        """True once the column dropped its exact substrate (bounded mode)."""
        return self._compressed

    @property
    def distinct(self) -> int:
        if self._compressed:
            return max(len(self._counts), int(round(self._distinct_est)))
        return len(self._counts)

    @property
    def null_count(self) -> int:
        return self._nulls

    @property
    def non_null_count(self) -> int:
        return self._non_null

    @property
    def min_value(self) -> Any:
        if self._extrema_dirty:
            self._refresh_extrema()
        return self._min

    @property
    def max_value(self) -> Any:
        if self._extrema_dirty:
            self._refresh_extrema()
        return self._max

    def frequency(self, value: Any) -> int:
        """Live rows holding ``value``: exact until the column compresses,
        a histogram estimate afterwards."""
        if value is None:
            return self._nulls
        if self._compressed:
            count = self._counts.get(value)
            if count is not None:
                return count
            assert self._hist is not None
            try:
                return int(round(self._hist.eq_rows(value)))
            except TypeError:
                return 0
        return self._counts.get(value, 0)

    def histogram(self) -> Histogram | None:
        """The column's bounded summary, rebuilt lazily after mutations.

        ``None`` when the values are not mutually sortable — estimation
        then falls back to pre-histogram behaviour.
        """
        if self._compressed:
            return self._hist
        if self._hist_dirty:
            self._hist = _build_histogram(self._counts)
            self._hist_dirty = False
        return self._hist

    def clone(self) -> ColumnStats:
        """Independent copy, used when a COW table detaches from a snapshot."""
        out = ColumnStats()
        out._nulls = self._nulls
        out._non_null = self._non_null
        out._min = self._min
        out._max = self._max
        out._extrema_dirty = self._extrema_dirty
        out._hist = self._hist.clone() if self._hist is not None else None
        out._hist_dirty = self._hist_dirty
        out._compressed = self._compressed
        out._distinct_est = self._distinct_est
        out._new_ratio = self._new_ratio
        if self._compressed and out._hist is not None:
            out._counts = out._hist.mcv  # keep the MCV aliasing invariant
        else:
            out._counts = dict(self._counts)
        return out


class TableStatistics:
    """Row count plus per-column :class:`ColumnStats` for one table.

    :attr:`version` is a monotone stamp bumped by every stats-changing
    mutation of *this* table, mirroring the owning table's per-table
    version: consumers that cache derived estimates (cardinalities, join
    orders) can key their validity on it without watching other tables.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._row_count = 0
        self._version = 0
        self._columns: dict[str, ColumnStats] = {
            name: ColumnStats() for name in schema.column_names
        }

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def version(self) -> int:
        """Monotone stamp bumped whenever these statistics change."""
        return self._version

    def clone(self) -> TableStatistics:
        """Independent copy sharing only the (immutable) schema.

        Taken by :meth:`Table._materialise_for_write` so a pinned snapshot
        keeps consistent statistics while the live table's copy keeps
        updating incrementally.
        """
        out = TableStatistics.__new__(TableStatistics)
        out.schema = self.schema
        out._row_count = self._row_count
        out._version = self._version
        out._columns = {name: col.clone() for name, col in self._columns.items()}
        return out

    def column(self, name: str) -> ColumnStats:
        return self._columns[name.lower()]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._columns

    def column_distinct(self, name: str) -> int | None:
        """Distinct count for a column, or None when unknown."""
        stats = self._columns.get(name.lower())
        return None if stats is None else stats.distinct

    # -- hooks called by Table ---------------------------------------------

    def on_insert(self, row: tuple[Any, ...]) -> None:
        self._row_count += 1
        self._version += 1
        for name, value in zip(self.schema.column_names, row):
            self._columns[name].add(value)

    def on_delete(self, row: tuple[Any, ...]) -> None:
        self._row_count = max(0, self._row_count - 1)
        self._version += 1
        for name, value in zip(self.schema.column_names, row):
            self._columns[name].remove(value)

    def on_update(self, old: tuple[Any, ...], new: tuple[Any, ...]) -> None:
        self._version += 1
        for name, before, after in zip(self.schema.column_names, old, new):
            if before is not after and before != after:
                stats = self._columns[name]
                stats.remove(before)
                stats.add(after)

    # -- selectivity estimation --------------------------------------------

    def eq_selectivity(self, column: str, value: Any) -> float:
        """Fraction of rows expected to satisfy ``column = value``."""
        if self._row_count == 0:
            return 0.0
        stats = self._columns.get(column.lower())
        if stats is None:
            return DEFAULT_SELECTIVITY
        if value is None:
            return 0.0  # `= NULL` never matches
        hist = stats.histogram()
        if hist is None:
            # Unsortable values: fall back to the exact substrate.
            try:
                return min(1.0, stats.frequency(value) / self._row_count)
            except TypeError:  # unhashable — should not happen for SQL values
                distinct = stats.distinct
                return 1.0 / distinct if distinct else DEFAULT_SELECTIVITY
        try:
            return min(1.0, hist.eq_rows(value) / self._row_count)
        except TypeError:
            return 0.0  # type-mismatched literal can never equal a value

    def in_selectivity(self, column: str, values: Iterable[Any]) -> float:
        return min(1.0, sum(self.eq_selectivity(column, v) for v in values))

    def range_selectivity(self, column: str, op: str, value: Any) -> float:
        """Fraction of rows expected to satisfy ``column <op> value``.

        Histogram-driven: full buckets count outright, the boundary bucket
        interpolates (numeric) or splits in half (text).  Falls back to
        :data:`DEFAULT_SELECTIVITY` when the column has no histogram or the
        probe value is not comparable with it.
        """
        if self._row_count == 0:
            return 0.0
        stats = self._columns.get(column.lower())
        if stats is None or value is None:
            return DEFAULT_SELECTIVITY
        hist = stats.histogram()
        if hist is None:
            return DEFAULT_SELECTIVITY
        try:
            rows = hist.cmp_rows(op, value)
        except TypeError:
            return DEFAULT_SELECTIVITY
        return max(0.0, min(1.0, rows / self._row_count))

    def between_selectivity(self, column: str, low: Any, high: Any) -> float:
        if self._row_count == 0:
            return 0.0
        stats = self._columns.get(column.lower())
        if stats is None or low is None or high is None:
            return DEFAULT_SELECTIVITY
        hist = stats.histogram()
        if hist is None:
            return DEFAULT_SELECTIVITY
        try:
            rows = hist.between_rows(low, high)
        except TypeError:
            return DEFAULT_SELECTIVITY
        return max(0.0, min(1.0, rows / self._row_count))

    def describe(self) -> str:
        """Human-readable dump used by diagnostics and tests."""
        lines = [f"{self.schema.name}: {self._row_count} rows"]
        for name in self.schema.column_names:
            stats = self._columns[name]
            lines.append(
                f"  {name}: distinct={stats.distinct} nulls={stats.null_count}"
                f" min={stats.min_value!r} max={stats.max_value!r}"
            )
        return "\n".join(lines)
