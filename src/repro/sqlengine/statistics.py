"""Incremental table statistics for the cost-based optimizer.

Every :class:`~repro.sqlengine.table.Table` owns a :class:`TableStatistics`
that is updated on each insert/delete/update, so the optimizer can consult
row counts, per-column distinct counts, null counts and min/max bounds
without ever scanning.  The per-column value histogram is exact (a value ->
count mapping), which makes equality selectivity estimates precise for the
data sizes this engine targets; range selectivity interpolates between the
maintained min/max bounds.

Selectivities are returned in ``[0, 1]`` and multiply: the optimizer uses
them to order multi-join plans smallest-first and to pick hash-join build
sides.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.sqlengine.schema import TableSchema

#: Fallback selectivity for predicates the estimator cannot classify
#: (LIKE, inequality, subqueries, ...) — the classic System R guess.
DEFAULT_SELECTIVITY = 1.0 / 3.0


class ColumnStats:
    """Distinct/null counts and min/max bounds for one column.

    Maintained incrementally: :meth:`add` / :meth:`remove` are called by the
    owning table for every row mutation.  Min/max are recomputed lazily only
    when a deletion removes the current extremum.
    """

    __slots__ = ("_counts", "_nulls", "_min", "_max", "_extrema_dirty")

    def __init__(self) -> None:
        self._counts: dict[Any, int] = {}
        self._nulls = 0
        self._min: Any = None
        self._max: Any = None
        self._extrema_dirty = False

    # -- maintenance -------------------------------------------------------

    def add(self, value: Any) -> None:
        if value is None:
            self._nulls += 1
            return
        self._counts[value] = self._counts.get(value, 0) + 1
        if not self._extrema_dirty:
            try:
                if self._min is None or value < self._min:
                    self._min = value
                if self._max is None or value > self._max:
                    self._max = value
            except TypeError:  # mixed types; fall back to lazy recompute
                self._extrema_dirty = True

    def remove(self, value: Any) -> None:
        if value is None:
            self._nulls = max(0, self._nulls - 1)
            return
        count = self._counts.get(value)
        if count is None:
            return
        if count <= 1:
            del self._counts[value]
            # The extremum may have left the column; recompute on demand.
            if value == self._min or value == self._max:
                self._extrema_dirty = True
        else:
            self._counts[value] = count - 1

    def _refresh_extrema(self) -> None:
        if not self._counts:
            self._min = self._max = None
        else:
            try:
                self._min = min(self._counts)
                self._max = max(self._counts)
            except TypeError:
                self._min = self._max = None
        self._extrema_dirty = False

    # -- accessors ---------------------------------------------------------

    @property
    def distinct(self) -> int:
        return len(self._counts)

    @property
    def null_count(self) -> int:
        return self._nulls

    @property
    def non_null_count(self) -> int:
        return sum(self._counts.values())

    @property
    def min_value(self) -> Any:
        if self._extrema_dirty:
            self._refresh_extrema()
        return self._min

    @property
    def max_value(self) -> Any:
        if self._extrema_dirty:
            self._refresh_extrema()
        return self._max

    def frequency(self, value: Any) -> int:
        """Exact number of live rows holding ``value``."""
        if value is None:
            return self._nulls
        return self._counts.get(value, 0)

    def clone(self) -> ColumnStats:
        """Independent copy, used when a COW table detaches from a snapshot."""
        out = ColumnStats()
        out._counts = dict(self._counts)
        out._nulls = self._nulls
        out._min = self._min
        out._max = self._max
        out._extrema_dirty = self._extrema_dirty
        return out


class TableStatistics:
    """Row count plus per-column :class:`ColumnStats` for one table.

    :attr:`version` is a monotone stamp bumped by every stats-changing
    mutation of *this* table, mirroring the owning table's per-table
    version: consumers that cache derived estimates (cardinalities, join
    orders) can key their validity on it without watching other tables.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._row_count = 0
        self._version = 0
        self._columns: dict[str, ColumnStats] = {
            name: ColumnStats() for name in schema.column_names
        }

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def version(self) -> int:
        """Monotone stamp bumped whenever these statistics change."""
        return self._version

    def clone(self) -> TableStatistics:
        """Independent copy sharing only the (immutable) schema.

        Taken by :meth:`Table._materialise_for_write` so a pinned snapshot
        keeps consistent statistics while the live table's copy keeps
        updating incrementally.
        """
        out = TableStatistics.__new__(TableStatistics)
        out.schema = self.schema
        out._row_count = self._row_count
        out._version = self._version
        out._columns = {name: col.clone() for name, col in self._columns.items()}
        return out

    def column(self, name: str) -> ColumnStats:
        return self._columns[name.lower()]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._columns

    # -- hooks called by Table ---------------------------------------------

    def on_insert(self, row: tuple[Any, ...]) -> None:
        self._row_count += 1
        self._version += 1
        for name, value in zip(self.schema.column_names, row):
            self._columns[name].add(value)

    def on_delete(self, row: tuple[Any, ...]) -> None:
        self._row_count = max(0, self._row_count - 1)
        self._version += 1
        for name, value in zip(self.schema.column_names, row):
            self._columns[name].remove(value)

    def on_update(self, old: tuple[Any, ...], new: tuple[Any, ...]) -> None:
        self._version += 1
        for name, before, after in zip(self.schema.column_names, old, new):
            if before is not after and before != after:
                stats = self._columns[name]
                stats.remove(before)
                stats.add(after)

    # -- selectivity estimation --------------------------------------------

    def eq_selectivity(self, column: str, value: Any) -> float:
        """Fraction of rows expected to satisfy ``column = value``."""
        if self._row_count == 0:
            return 0.0
        stats = self._columns.get(column.lower())
        if stats is None:
            return DEFAULT_SELECTIVITY
        if value is None:
            return 0.0  # `= NULL` never matches
        try:
            return min(1.0, stats.frequency(value) / self._row_count)
        except TypeError:  # unhashable — should not happen for SQL values
            distinct = stats.distinct
            return 1.0 / distinct if distinct else DEFAULT_SELECTIVITY

    def in_selectivity(self, column: str, values: Iterable[Any]) -> float:
        return min(1.0, sum(self.eq_selectivity(column, v) for v in values))

    def range_selectivity(self, column: str, op: str, value: Any) -> float:
        """Fraction of rows expected to satisfy ``column <op> value``.

        Interpolates linearly between the maintained min/max for numeric
        columns; anything else falls back to :data:`DEFAULT_SELECTIVITY`.
        """
        if self._row_count == 0:
            return 0.0
        stats = self._columns.get(column.lower())
        if stats is None or value is None:
            return DEFAULT_SELECTIVITY
        low, high = stats.min_value, stats.max_value
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not isinstance(low, (int, float))
            or not isinstance(high, (int, float))
        ):
            return DEFAULT_SELECTIVITY
        if high == low:
            matches = stats.frequency(low)
            satisfied = {
                "<": value > low,
                "<=": value >= low,
                ">": value < low,
                ">=": value <= low,
            }[op]
            return matches / self._row_count if satisfied else 0.0
        span = float(high - low)
        if op in ("<", "<="):
            fraction = (value - low) / span
        else:
            fraction = (high - value) / span
        return max(0.0, min(1.0, fraction))

    def between_selectivity(self, column: str, low: Any, high: Any) -> float:
        above = self.range_selectivity(column, ">=", low)
        below = self.range_selectivity(column, "<=", high)
        # Independence would over-reduce; the range conjunction is the
        # overlap of the two one-sided fractions.
        combined = max(0.0, above + below - 1.0)
        if combined == 0.0:
            combined = min(above, below) * DEFAULT_SELECTIVITY
        return min(1.0, combined)

    def describe(self) -> str:
        """Human-readable dump used by diagnostics and tests."""
        lines = [f"{self.schema.name}: {self._row_count} rows"]
        for name in self.schema.column_names:
            stats = self._columns[name]
            lines.append(
                f"  {name}: distinct={stats.distinct} nulls={stats.null_count}"
                f" min={stats.min_value!r} max={stats.max_value!r}"
            )
        return "\n".join(lines)
