"""Row storage for one table, with constraint checking and index maintenance.

Rows are stored as tuples in insertion order; deleted slots are tombstoned
(``None``) so row ids remain stable for index entries.

Every table carries its own monotone :attr:`Table.version` stamp, bumped by
insert/update/delete and index DDL.  Consumers (the statement-plan cache,
the NLI's value index) compare per-table stamps instead of one global
counter, so a write to one table never invalidates state derived only from
others.  Mutations also emit a :class:`TableDelta` — the row-level string
values that entered or left TEXT columns — which the owning database
broadcasts to listeners for incremental index maintenance.  Bulk
mutations (batched UPDATE via :meth:`Table.update_rows`, batched DELETE
via :meth:`Table.delete_rows`) coalesce into **one** delta per statement.

Row storage is **copy-on-write for snapshot readers** (MVCC): a pinned
:class:`~repro.sqlengine.snapshot.TableSnapshot` shares the live rows,
indexes and statistics until the next mutation, which first detaches by
cloning them — so snapshot readers never block writers and never observe
a half-applied statement.  See ``docs/concurrency.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import IntegrityError, SchemaError, TypeMismatchError
from repro.sqlengine.indexes import HashIndex, SortedIndex
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.statistics import TableStatistics
from repro.sqlengine.types import SqlType, coerce_value, is_numeric


@dataclass(frozen=True)
class TableDelta:
    """Row-level change record emitted by one table mutation.

    ``added`` / ``removed`` list the ``(column, value)`` string pairs that
    entered or left the table's TEXT columns, which is exactly what the
    NLI's value index and lexicon derive from live data.  ``kind`` is
    ``"dml"`` for row mutations and ``"ddl"`` for index creation (which
    changes plans but not values).
    """

    table: str
    added: tuple[tuple[str, str], ...] = ()
    removed: tuple[tuple[str, str], ...] = ()
    kind: str = "dml"  # dml | ddl


class Table:
    """In-memory table: typed rows + optional secondary indexes.

    >>> from repro.sqlengine.schema import Column
    >>> from repro.sqlengine.types import SqlType
    >>> t = Table(TableSchema("x", [Column("a", SqlType.INT)], primary_key="a"))
    >>> t.insert({"a": 1}); len(t)
    0
    1
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.statistics = TableStatistics(schema)
        self._rows: list[tuple[Any, ...] | None] = []
        self._live_count = 0
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        self._pk_index: HashIndex | None = None
        if schema.primary_key is not None:
            self._pk_index = HashIndex(schema.primary_key)
        #: Positions of TEXT columns, used to extract delta values cheaply.
        self._text_positions: tuple[tuple[int, str], ...] = tuple(
            (i, col.name)
            for i, col in enumerate(schema.columns)
            if col.sql_type is SqlType.TEXT
        )
        #: This table's own version stamp: bumped by every row mutation and
        #: by index DDL.  When the table belongs to a Database, stamps are
        #: drawn from the database's global clock (so stamps stay unique
        #: across drop/recreate); standalone tables count locally.
        self._version = 0
        #: Set by the owning Database: called with the mutation's delta,
        #: returns the new version stamp from the database clock.
        self._on_mutation: Callable[[TableDelta], int] | None = None
        #: MVCC bookkeeping.  ``_pinned`` counts live snapshots sharing the
        #: *current* storage generation; the first mutation while pinned
        #: copies rows/indexes/statistics (copy-on-write) so pinned readers
        #: keep an immutable view.  ``_generation`` identifies the storage
        #: so a late release of an already-detached pin is a no-op.  The
        #: reentrant lock makes "capture a snapshot" and "mutate" mutually
        #: atomic — a snapshot can never observe a half-applied statement.
        #: Tables owned by a Database share ITS mutation lock (installed
        #: by create_table), so a whole-database snapshot is one atomic
        #: cut; standalone tables fall back to a private lock.
        self._write_lock = threading.RLock()
        self._pinned = 0
        self._generation = 0

    # -- snapshot pinning (MVCC) --------------------------------------------

    def capture(self) -> "TableSnapshot":
        """Pin the current storage and return an immutable view of it.

        The view shares the live row list and indexes until the next
        mutation, which detaches by cloning (:meth:`_materialise_for_write`)
        — so capture is O(1) and the snapshot never sees later writes.
        The pin is released via :meth:`TableSnapshot.release` (or its GC
        finalizer), after which the storage may be mutated in place again.
        """
        from repro.sqlengine.snapshot import TableSnapshot

        with self._write_lock:
            self._pinned += 1
            return TableSnapshot(self)

    def _release_pin(self, generation: int) -> None:
        with self._write_lock:
            if generation == self._generation and self._pinned > 0:
                self._pinned -= 1

    def _materialise_for_write(self) -> None:
        """Detach from pinned snapshots before mutating (COW).

        Called under ``_write_lock`` by every mutation.  When no snapshot
        pins the current storage this is a no-op; otherwise rows, indexes
        and statistics are cloned once, the generation moves on, and the
        pinned (old) objects are never touched again.
        """
        if not self._pinned:
            return
        self._rows = list(self._rows)
        self._hash_indexes = {
            name: index.clone() for name, index in self._hash_indexes.items()
        }
        self._sorted_indexes = {
            name: index.clone() for name, index in self._sorted_indexes.items()
        }
        if self._pk_index is not None:
            self._pk_index = self._pk_index.clone()
        self.statistics = self.statistics.clone()
        self._generation += 1
        self._pinned = 0

    def restore_from(self, source: "TableSnapshot") -> None:
        """Reset storage to a pinned snapshot's captured state (ROLLBACK).

        Everything is *eagerly cloned* from the snapshot's captured
        objects — the snapshot may still be shared by any number of
        readers, so the restored table must never alias them.  The
        version stamp is restored too: the data is bit-identical to what
        that stamp described, so plan-cache entries built before the
        rolled-back transaction become valid again.  The generation
        moves on and the pin count resets, making release of any pin
        taken against the pre-restore storage a no-op.
        """
        with self._write_lock:
            self._rows = list(source._rows)
            self._live_count = source._live_count
            self._hash_indexes = {
                name: index.clone() for name, index in source._hash_indexes.items()
            }
            self._sorted_indexes = {
                name: index.clone() for name, index in source._sorted_indexes.items()
            }
            self._pk_index = (
                source._pk_index.clone() if source._pk_index is not None else None
            )
            self.statistics = source.statistics.clone()
            self._version = source._version
            self._generation += 1
            self._pinned = 0

    def _notify_mutation(self, delta: TableDelta) -> None:
        if self._on_mutation is not None:
            self._version = self._on_mutation(delta)
        else:
            self._version += 1

    def _text_values(self, row: tuple[Any, ...]) -> tuple[tuple[str, str], ...]:
        """``(column, value)`` pairs for the row's non-null TEXT cells."""
        return tuple(
            (name, value)
            for pos, name in self._text_positions
            if isinstance((value := row[pos]), str)
        )

    @property
    def version(self) -> int:
        """Monotone stamp bumped by insert/update/delete and index DDL."""
        return self._version

    # -- basics ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return self._live_count

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate live rows in insertion order."""
        return (row for row in self._rows if row is not None)

    def rows_with_ids(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        return ((i, row) for i, row in enumerate(self._rows) if row is not None)

    def batch_storage(self) -> tuple[list, "range | list[int]"]:
        """Row storage plus the selection of live positions, for columnar
        scans.  Callers must treat both as read-only — the storage is the
        table's own (with ``None`` tombstones when rows were deleted).
        """
        rows = self._rows
        if self._live_count == len(rows):
            return rows, range(len(rows))
        return rows, [i for i, row in enumerate(rows) if row is not None]

    def row_by_id(self, row_id: int) -> tuple[Any, ...] | None:
        if 0 <= row_id < len(self._rows):
            return self._rows[row_id]
        return None

    # -- mutation ----------------------------------------------------------

    def _normalise(self, values: Mapping[str, Any] | Sequence[Any]) -> tuple[Any, ...]:
        columns = self.schema.columns
        if isinstance(values, Mapping):
            lowered = {key.lower(): val for key, val in values.items()}
            unknown = set(lowered) - set(self.schema.column_names)
            if unknown:
                raise SchemaError(
                    f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
                )
            raw = [lowered.get(col.name) for col in columns]
        else:
            if len(values) != len(columns):
                raise SchemaError(
                    f"table {self.name!r} expects {len(columns)} values, "
                    f"got {len(values)}"
                )
            raw = list(values)
        out = []
        for col, val in zip(columns, raw):
            coerced = coerce_value(val, col.sql_type)
            if coerced is None and not col.nullable:
                raise IntegrityError(
                    f"column {self.name}.{col.name} is NOT NULL"
                )
            out.append(coerced)
        return tuple(out)

    def insert(self, values: Mapping[str, Any] | Sequence[Any]) -> int:
        """Insert one row; returns its row id."""
        return self.insert_normalised(self._normalise(values))

    def insert_normalised(self, row: tuple[Any, ...]) -> int:
        """Insert an already-normalised row (one `_normalise` pass total
        for callers — the FK-checking database — that prepared it)."""
        with self._write_lock:
            if self._pk_index is not None:
                pk_pos = self.schema.column_index(
                    self.schema.primary_key
                )  # type: ignore[arg-type]
                pk_val = row[pk_pos]
                if pk_val is None:
                    raise IntegrityError(
                        f"primary key {self.name}.{self.schema.primary_key} cannot be NULL"
                    )
                if self._pk_index.lookup(pk_val):
                    raise IntegrityError(
                        f"duplicate primary key {pk_val!r} in table {self.name!r}"
                    )
            self._materialise_for_write()
            row_id = len(self._rows)
            self._rows.append(row)
            self._live_count += 1
            self._index_row(row_id, row)
            self.statistics.on_insert(row)
            self._notify_mutation(TableDelta(self.name, added=self._text_values(row)))
        return row_id

    def insert_many(self, rows: Iterable[Mapping[str, Any] | Sequence[Any]]) -> int:
        """Insert many rows under one lock scope; returns the number
        inserted (a snapshot can never pin between the batch's rows)."""
        count = 0
        with self._write_lock:
            for values in rows:
                self.insert(values)
                count += 1
        return count

    def delete_row(self, row_id: int) -> bool:
        """Tombstone a row; returns True when a live row was removed."""
        return self.delete_rows([row_id]) == 1

    def delete_rows(self, row_ids: Iterable[int]) -> int:
        """Tombstone a batch of rows, emitting **one** coalesced delta.

        This is the bulk-DELETE path: a statement removing 10k rows
        notifies delta listeners once (with all removed string values),
        instead of enqueuing 10k per-row callbacks, and bumps the table
        version once — exactly like a batched UPDATE.
        """
        with self._write_lock:
            doomed: list[tuple[int, tuple[Any, ...]]] = []
            seen: set[int] = set()
            for row_id in row_ids:
                row = self.row_by_id(row_id)
                if row is None or row_id in seen:
                    continue
                seen.add(row_id)
                doomed.append((row_id, row))
            if not doomed:
                return 0
            self._materialise_for_write()
            removed: list[tuple[str, str]] = []
            for row_id, row in doomed:
                self._unindex_row(row_id, row)
                self._rows[row_id] = None
                self._live_count -= 1
                self.statistics.on_delete(row)
                removed.extend(self._text_values(row))
            self._notify_mutation(TableDelta(self.name, removed=tuple(removed)))
            return len(doomed)

    def update_row(
        self, row_id: int, values: Mapping[str, Any] | Sequence[Any]
    ) -> bool:
        """Replace a row in place, keeping its row id and insertion order.

        Indexes and statistics are maintained; the primary key may change as
        long as the new value does not collide with another live row.
        """
        return self.update_rows([(row_id, values)]) == 1

    def update_rows(
        self, updates: Iterable[tuple[int, Mapping[str, Any] | Sequence[Any]]]
    ) -> int:
        """Replace several rows in place, atomically with respect to errors.

        All values are normalised and the *final* primary-key state is
        validated before anything mutates, so a collision raises with the
        table untouched.  The apply itself is two-phase (unindex all old
        rows, then write+index all new ones), which makes chained updates
        like ``SET id = id + 1`` — where intermediate states would collide
        — come out right.
        """
        return self.apply_prepared_updates(self.prepare_updates(updates))

    def prepare_updates(
        self, updates: Iterable[tuple[int, Mapping[str, Any] | Sequence[Any]]]
    ) -> list[tuple[int, tuple[Any, ...], tuple[Any, ...]]]:
        """Normalise a batch into ``(row_id, new_row, old_row)`` triples.

        Split out so callers that validate before applying (the database's
        FK enforcement) can reuse the normalised rows instead of paying
        for a second normalisation pass.
        """
        prepared: list[tuple[int, tuple[Any, ...], tuple[Any, ...]]] = []
        for row_id, values in updates:
            old = self.row_by_id(row_id)
            if old is None:
                continue
            prepared.append((row_id, self._normalise(values), old))
        return prepared

    def apply_prepared_updates(
        self, prepared: list[tuple[int, tuple[Any, ...], tuple[Any, ...]]]
    ) -> int:
        """Validate final PK state, then two-phase-apply prepared triples."""
        with self._write_lock:
            return self._apply_prepared_updates_locked(prepared)

    def _apply_prepared_updates_locked(
        self, prepared: list[tuple[int, tuple[Any, ...], tuple[Any, ...]]]
    ) -> int:
        if self._pk_index is not None and prepared:
            pk_pos = self.schema.column_index(
                self.schema.primary_key
            )  # type: ignore[arg-type]
            updating = {row_id for row_id, _, _ in prepared}
            seen: set[Any] = set()
            for row_id, new, _ in prepared:
                pk_val = new[pk_pos]
                if pk_val is None:
                    raise IntegrityError(
                        f"primary key {self.name}.{self.schema.primary_key} "
                        "cannot be NULL"
                    )
                if pk_val in seen or any(
                    holder not in updating
                    for holder in self._pk_index.lookup(pk_val)
                ):
                    raise IntegrityError(
                        f"duplicate primary key {pk_val!r} in table {self.name!r}"
                    )
                seen.add(pk_val)
        if prepared:
            self._materialise_for_write()
        for row_id, _, old in prepared:
            self._unindex_row(row_id, old)
        added: list[tuple[str, str]] = []
        removed: list[tuple[str, str]] = []
        for row_id, new, old in prepared:
            self._rows[row_id] = new
            self._index_row(row_id, new)
            self.statistics.on_update(old, new)
            for pos, name in self._text_positions:
                before, after = old[pos], new[pos]
                if before == after:
                    continue
                if isinstance(before, str):
                    removed.append((name, before))
                if isinstance(after, str):
                    added.append((name, after))
        if prepared:
            self._notify_mutation(
                TableDelta(self.name, added=tuple(added), removed=tuple(removed))
            )
        return len(prepared)

    # -- indexes -----------------------------------------------------------

    def _index_row(self, row_id: int, row: tuple[Any, ...]) -> None:
        if self._pk_index is not None:
            pk_pos = self.schema.column_index(
                self.schema.primary_key
            )  # type: ignore[arg-type]
            self._pk_index.add(row[pk_pos], row_id)
        for col, idx in self._hash_indexes.items():
            idx.add(row[self.schema.column_index(col)], row_id)
        for col, idx in self._sorted_indexes.items():
            idx.add(row[self.schema.column_index(col)], row_id)

    def _unindex_row(self, row_id: int, row: tuple[Any, ...]) -> None:
        if self._pk_index is not None:
            pk_pos = self.schema.column_index(
                self.schema.primary_key
            )  # type: ignore[arg-type]
            self._pk_index.remove(row[pk_pos], row_id)
        for col, idx in self._hash_indexes.items():
            idx.remove(row[self.schema.column_index(col)], row_id)
        for col, idx in self._sorted_indexes.items():
            idx.remove(row[self.schema.column_index(col)], row_id)

    def create_hash_index(self, column: str) -> HashIndex:
        col = self.schema.column(column)
        with self._write_lock:
            if col.name in self._hash_indexes:
                return self._hash_indexes[col.name]
            index = HashIndex(col.name)
            pos = self.schema.column_index(col.name)
            for row_id, row in self.rows_with_ids():
                index.add(row[pos], row_id)
            self._materialise_for_write()
            self._hash_indexes[col.name] = index
            # Cached plans without the index are stale; values did not change.
            self._notify_mutation(TableDelta(self.name, kind="ddl"))
            return index

    def create_sorted_index(self, column: str) -> SortedIndex:
        col = self.schema.column(column)
        if not is_numeric(col.sql_type) and col.sql_type.value != "TEXT":
            raise TypeMismatchError(
                f"sorted index unsupported on {col.sql_type} column {col.name!r}"
            )
        with self._write_lock:
            if col.name in self._sorted_indexes:
                return self._sorted_indexes[col.name]
            index = SortedIndex(col.name)
            pos = self.schema.column_index(col.name)
            for row_id, row in self.rows_with_ids():
                index.add(row[pos], row_id)
            self._materialise_for_write()
            self._sorted_indexes[col.name] = index
            # Cached plans without the index are stale; values did not change.
            self._notify_mutation(TableDelta(self.name, kind="ddl"))
            return index

    def hash_index(self, column: str) -> HashIndex | None:
        lowered = column.lower()
        if self._pk_index is not None and lowered == self.schema.primary_key:
            return self._pk_index
        return self._hash_indexes.get(lowered)

    def sorted_index(self, column: str) -> SortedIndex | None:
        return self._sorted_indexes.get(column.lower())

    # -- convenience lookups used by NLI layers -----------------------------

    def lookup_equal(self, column: str, value: Any) -> list[tuple[Any, ...]]:
        """All rows where ``column == value``, via index when available."""
        index = self.hash_index(column)
        pos = self.schema.column_index(column)
        if index is not None:
            out = []
            for row_id in index.lookup(value):
                row = self.row_by_id(row_id)
                if row is not None:
                    out.append(row)
            return out
        return [row for row in self.rows() if row[pos] == value]

    def column_values(self, column: str) -> Iterator[Any]:
        """Iterate the (live) values of one column."""
        pos = self.schema.column_index(column)
        return (row[pos] for row in self.rows())
