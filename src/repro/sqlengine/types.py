"""Value types for the relational engine.

The engine supports four scalar types — ``INT``, ``FLOAT``, ``TEXT`` and
``BOOL`` — plus SQL ``NULL`` (represented by Python ``None``).  All coercion
and comparison rules live here so the rest of the engine never has to guess
how two values relate.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class SqlType(enum.Enum):
    """Declared column types."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOL = "BOOL"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Python types acceptable (post-coercion) for each SQL type.
_PYTHON_TYPES: dict[SqlType, tuple[type, ...]] = {
    SqlType.INT: (int,),
    SqlType.FLOAT: (float, int),
    SqlType.TEXT: (str,),
    SqlType.BOOL: (bool,),
}


def coerce_value(value: Any, sql_type: SqlType) -> Any:
    """Coerce ``value`` to ``sql_type``, raising :class:`TypeMismatchError`.

    ``None`` always passes through (SQL NULL is valid for any type unless a
    NOT NULL constraint rejects it at the schema layer).

    >>> coerce_value("12", SqlType.INT)
    12
    >>> coerce_value(3, SqlType.FLOAT)
    3.0
    """
    if value is None:
        return None
    if sql_type is SqlType.INT:
        if isinstance(value, bool):
            raise TypeMismatchError(f"cannot store BOOL {value!r} in INT column")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to INT") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to INT")
    if sql_type is SqlType.FLOAT:
        if isinstance(value, bool):
            raise TypeMismatchError(f"cannot store BOOL {value!r} in FLOAT column")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT")
    if sql_type is SqlType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float, bool)):
            return str(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to TEXT")
    if sql_type is SqlType.BOOL:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1", "yes"):
                return True
            if lowered in ("false", "f", "0", "no"):
                return False
            raise TypeMismatchError(f"cannot coerce {value!r} to BOOL")
        raise TypeMismatchError(f"cannot coerce {value!r} to BOOL")
    raise TypeMismatchError(f"unknown SQL type {sql_type!r}")  # pragma: no cover


def is_valid(value: Any, sql_type: SqlType) -> bool:
    """Return True when ``value`` is storable as-is for ``sql_type``."""
    if value is None:
        return True
    if sql_type is not SqlType.BOOL and isinstance(value, bool):
        return False
    return isinstance(value, _PYTHON_TYPES[sql_type])


def infer_type(value: Any) -> SqlType:
    """Infer the narrowest :class:`SqlType` able to hold ``value``."""
    if isinstance(value, bool):
        return SqlType.BOOL
    if isinstance(value, int):
        return SqlType.INT
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.TEXT
    raise TypeMismatchError(f"no SQL type for Python value {value!r}")


def is_numeric(sql_type: SqlType) -> bool:
    """True for INT and FLOAT columns."""
    return sql_type in (SqlType.INT, SqlType.FLOAT)


class _NullOrder:
    """Sort key wrapper placing NULLs first and ordering mixed values.

    SQL comparison with NULL yields unknown, but ORDER BY needs a total
    order; the engine sorts NULLs first (ascending), as most engines do.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def _rank(self) -> int:
        if self.value is None:
            return 0
        if isinstance(self.value, bool):
            return 1
        if isinstance(self.value, (int, float)):
            return 2
        return 3

    def __lt__(self, other: "_NullOrder") -> bool:
        a, b = self._rank(), other._rank()
        if a != b:
            return a < b
        if self.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullOrder) and self.value == other.value


def sort_key(value: Any) -> _NullOrder:
    """Total-order sort key for heterogeneous/NULL-bearing columns."""
    return _NullOrder(value)


def compare_values(left: Any, right: Any) -> int | None:
    """Three-way SQL comparison.

    Returns ``None`` when either side is NULL (SQL unknown), else -1/0/1.
    Numeric types compare cross-type (INT vs FLOAT); everything else must
    match exactly on Python type family.
    """
    if left is None or right is None:
        return None
    left_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_num and right_num:
        if left < right:
            return -1
        return 1 if left > right else 0
    if isinstance(left, str) and isinstance(right, str):
        if left < right:
            return -1
        return 1 if left > right else 0
    if isinstance(left, bool) and isinstance(right, bool):
        if left < right:
            return -1
        return 1 if left > right else 0
    raise TypeMismatchError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )
