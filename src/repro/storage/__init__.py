"""Durable storage: write-ahead log, snapshot checkpoints, crash recovery.

The package sits *under* the SQL engine's MVCC commit point:

* every committed DML/DDL statement appends its SQL text to an fsync'd,
  torn-tail-tolerant JSONL write-ahead log (:mod:`repro.storage.wal`);
* a periodic checkpoint serializes a pinned
  :meth:`~repro.sqlengine.database.Database.snapshot` — the MVCC cut is
  the unit of durability — via temp-file + atomic rename
  (:mod:`repro.storage.checkpoint`);
* startup recovery loads the newest valid checkpoint and replays the WAL
  tail through the engine (:class:`repro.storage.manager.StorageManager`);
* multi-statement ``BEGIN``/``COMMIT``/``ROLLBACK`` buffers WAL records
  until COMMIT and restores the pre-transaction snapshot on ROLLBACK
  (:class:`repro.storage.transactions.TransactionManager`).

Both on-disk formats carry a magic string and a format version so future
migrations have a hook; see ``docs/storage.md``.
"""

from repro.storage.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    restore_checkpoint,
    write_checkpoint,
)
from repro.storage.manager import RecoveryReport, StorageManager, restore_database
from repro.storage.transactions import TransactionManager
from repro.storage.wal import WAL_FORMAT, WriteAheadLog, read_wal

__all__ = [
    "CHECKPOINT_FORMAT",
    "RecoveryReport",
    "StorageManager",
    "TransactionManager",
    "WAL_FORMAT",
    "WriteAheadLog",
    "load_checkpoint",
    "read_wal",
    "restore_checkpoint",
    "restore_database",
    "write_checkpoint",
]
