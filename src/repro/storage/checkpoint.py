"""Checkpoints: a pinned database snapshot serialized to one JSON file.

A checkpoint is written from a :class:`~repro.sqlengine.snapshot.DatabaseSnapshot`
— the MVCC cut is the unit of durability, so the file can never contain
half a statement or a mix of two commits.  Writes go to a temp file in
the same directory, fsync, then :func:`os.replace`: a crash mid-write
leaves only a ``*.tmp`` that recovery ignores, never a torn checkpoint.

The payload records each table's schema (including the comments the NLI
lexicon builder feeds on), its live rows, and the names of its secondary
indexes; restore recreates tables in foreign-key dependency order and
rebuilds indexes and statistics by reinsertion.  Like the WAL, the file
leads with a magic string and a format version so migrations have a hook.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import StorageError
from repro.sqlengine.schema import Column, ForeignKey, TableSchema
from repro.sqlengine.types import SqlType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.database import Database
    from repro.sqlengine.snapshot import DatabaseSnapshot

CHECKPOINT_MAGIC = "repro-checkpoint"
#: Current on-disk format; bump alongside a new CHECKPOINT_MIGRATIONS entry.
CHECKPOINT_FORMAT = 1

#: ``{old_format: payload_migrator}`` — rewrites a whole decoded payload
#: from ``old_format`` to ``old_format + 1``.  Empty today (the hook).
CHECKPOINT_MIGRATIONS: dict[int, Callable[[dict[str, Any]], dict[str, Any]]] = {}


def _schema_to_dict(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "columns": [
            {
                "name": col.name,
                "type": col.sql_type.value,
                "nullable": col.nullable,
                "comment": col.comment,
            }
            for col in schema.columns
        ],
        "primary_key": schema.primary_key,
        "foreign_keys": [
            {
                "column": fk.column,
                "ref_table": fk.ref_table,
                "ref_column": fk.ref_column,
            }
            for fk in schema.foreign_keys
        ],
        "comment": schema.comment,
    }


def _schema_from_dict(data: dict[str, Any]) -> TableSchema:
    return TableSchema(
        data["name"],
        [
            Column(
                col["name"],
                SqlType(col["type"]),
                nullable=col.get("nullable", True),
                comment=col.get("comment", ""),
            )
            for col in data["columns"]
        ],
        primary_key=data.get("primary_key"),
        foreign_keys=[
            ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
            for fk in data.get("foreign_keys", ())
        ],
        comment=data.get("comment", ""),
    )


def write_checkpoint(
    path: str | os.PathLike[str], snapshot: "DatabaseSnapshot", seq: int
) -> None:
    """Serialize ``snapshot`` to ``path`` atomically (tmp + fsync + rename)."""
    payload: dict[str, Any] = {
        "magic": CHECKPOINT_MAGIC,
        "format": CHECKPOINT_FORMAT,
        "seq": seq,
        "name": snapshot.name,
        "tables": [
            {
                "schema": _schema_to_dict(table.schema),
                "rows": [list(row) for row in table.rows()],
                "hash_indexes": sorted(table._hash_indexes),
                "sorted_indexes": sorted(table._sorted_indexes),
            }
            for table in snapshot.tables()
        ],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Parse and validate one checkpoint file.

    Raises :class:`StorageError` for a newer-than-supported format (the
    caller must not fall back past it silently) and ``ValueError`` /
    ``json.JSONDecodeError`` for corruption (the caller falls back to an
    older checkpoint).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("magic") != CHECKPOINT_MAGIC:
        raise ValueError(f"{path}: not a checkpoint file")
    fmt = payload.get("format")
    if not isinstance(fmt, int) or fmt > CHECKPOINT_FORMAT:
        raise StorageError(
            f"{Path(path).name}: checkpoint format {fmt!r} is newer than "
            f"supported format {CHECKPOINT_FORMAT}"
        )
    while fmt < CHECKPOINT_FORMAT:
        payload = CHECKPOINT_MIGRATIONS[fmt](payload)
        fmt += 1
    return payload


def _topo_order(tables: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Order table payloads so FK parents come before their children.

    ``create_table`` validates that referenced tables exist, so restore
    must respect dependency order.  Self-references are exempt (as at
    creation time); cycles cannot exist because they could never have
    been created.
    """
    by_name = {t["schema"]["name"]: t for t in tables}
    ordered: list[dict[str, Any]] = []
    done: set[str] = set()

    def visit(name: str) -> None:
        if name in done or name not in by_name:
            return
        done.add(name)
        for fk in by_name[name]["schema"].get("foreign_keys", ()):
            if fk["ref_table"] != name:
                visit(fk["ref_table"])
        ordered.append(by_name[name])

    for name in sorted(by_name):
        visit(name)
    return ordered


def restore_checkpoint(database: "Database", payload: dict[str, Any]) -> int:
    """Replace ``database``'s entire contents with a checkpoint's.

    Returns the number of rows restored.  Rows go in through the table
    layer directly (no FK re-validation — the checkpoint was taken from a
    consistent state), under one statement scope so no reader can pin a
    half-restored catalog.
    """
    rows_restored = 0
    with database.statement_scope():
        for name in list(database.table_names):
            database.drop_table(name)
        for tdata in _topo_order(payload["tables"]):
            table = database.create_table(_schema_from_dict(tdata["schema"]))
            for row in tdata["rows"]:
                table.insert(row)
                rows_restored += 1
            for column in tdata.get("hash_indexes", ()):
                table.create_hash_index(column)
            for column in tdata.get("sorted_indexes", ()):
                table.create_sorted_index(column)
    return rows_restored
