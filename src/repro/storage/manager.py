"""StorageManager: ties WAL, checkpoints and recovery to one engine.

Data directory layout::

    data/
      checkpoint-00000007.json   <- newest complete checkpoint
      wal-00000007.jsonl         <- records committed since it
      sessions.jsonl             <- service conversation log (managed by
                                    repro.service.persistence, not here)

The checkpoint and WAL segment sharing a sequence number are created
together, atomically against writers (one statement scope): the snapshot
serialized into ``checkpoint-N`` reflects exactly the statements recorded
in segments ``< N``, and every later statement lands in ``wal-N`` —
recovery is therefore "restore checkpoint N, replay segments >= N".
Older files are pruned only after the new checkpoint is durably renamed
into place, so a crash at any point leaves a recoverable chain.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError, StorageError
from repro.storage.checkpoint import (
    load_checkpoint,
    restore_checkpoint,
    write_checkpoint,
)
from repro.storage.wal import WriteAheadLog, read_wal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.executor import Engine

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.json$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.jsonl$")


def _scan_dir(data_dir: Path, pattern: re.Pattern[str]) -> dict[int, Path]:
    if not data_dir.is_dir():
        return {}
    out: dict[int, Path] = {}
    for path in data_dir.iterdir():
        match = pattern.match(path.name)
        if match:
            out[int(match.group(1))] = path
    return out


@dataclass(frozen=True)
class RecoveryReport:
    """What startup recovery found and did."""

    checkpoint_seq: int | None  #: sequence of the checkpoint restored, if any
    restored_rows: int  #: rows loaded from that checkpoint
    replayed: int  #: committed WAL statements re-executed
    replay_errors: int  #: WAL statements that failed to re-execute
    duration_ms: float

    @property
    def recovered(self) -> bool:
        """True when on-disk state replaced the in-memory seed."""
        return self.checkpoint_seq is not None or self.replayed > 0


def restore_database(
    engine: "Engine", data_dir: str | Path, *, attempts: int = 3
) -> RecoveryReport:
    """Rebuild ``engine``'s database from ``data_dir`` **without writing**.

    The read-only half of :meth:`StorageManager.recover`: restore the
    newest valid checkpoint, replay the committed WAL tail over it, and
    leave the directory untouched.  Because nothing is written, any
    number of processes can restore from the same chain concurrently —
    this is how cluster read workers (and respawned workers catching up)
    share one writer-owned data directory.  If the writer checkpoints
    and prunes mid-restore a segment can vanish underfoot (``OSError``);
    the whole restore then retries against a rescan — the new checkpoint
    that justified the prune covers everything the lost segment held.
    """
    data_dir = Path(data_dir)
    last_error: OSError | None = None
    for _ in range(max(1, attempts)):
        try:
            return _restore_once(engine, data_dir)
        except OSError as exc:
            last_error = exc
    raise StorageError(
        f"could not restore from {data_dir}: chain kept shifting underfoot"
    ) from last_error


def _restore_once(engine: "Engine", data_dir: Path) -> RecoveryReport:
    start = time.perf_counter()
    checkpoints = _scan_dir(data_dir, _CHECKPOINT_RE)
    wals = _scan_dir(data_dir, _WAL_RE)

    checkpoint_seq: int | None = None
    restored_rows = 0
    for seq in sorted(checkpoints, reverse=True):
        try:
            payload = load_checkpoint(checkpoints[seq])
        except StorageError:
            raise  # newer format: never silently fall back past it
        except OSError:
            # The writer checkpointed and pruned underfoot: this scan is
            # stale.  Propagate so :func:`restore_database` retries on a
            # rescan — falling back here could "succeed" with only the
            # WAL tail replayed over an older (or empty) base.
            raise
        except (ValueError, KeyError):
            continue  # corrupt: fall back to the older one
        restored_rows = restore_checkpoint(engine.database, payload)
        checkpoint_seq = seq
        break

    replayed = 0
    replay_errors = 0
    floor = checkpoint_seq if checkpoint_seq is not None else 0
    for seq in sorted(s for s in wals if s >= floor):
        for sql in read_wal(wals[seq]):
            try:
                engine.execute(sql)
            except ReproError:
                replay_errors += 1
            else:
                replayed += 1

    return RecoveryReport(
        checkpoint_seq=checkpoint_seq,
        restored_rows=restored_rows,
        replayed=replayed,
        replay_errors=replay_errors,
        duration_ms=(time.perf_counter() - start) * 1000.0,
    )


class StorageManager:
    """Durability for one engine: WAL appends, checkpoint cadence, recovery.

    Construction only records configuration; call :meth:`recover` (which
    also writes a fresh checkpoint and opens a new WAL segment), then
    :meth:`attach` to start receiving the engine's committed statements.
    Writers are serialized above this layer (the service's commit lock),
    so append/rotate bookkeeping needs only a small internal lock.
    """

    def __init__(
        self,
        engine: "Engine",
        data_dir: str | Path,
        *,
        checkpoint_every: int = 512,
        fsync: bool = True,
    ) -> None:
        self.engine = engine
        self.database = engine.database
        self.data_dir = Path(data_dir)
        #: Committed WAL records between checkpoints; 0 disables the cadence
        #: (checkpoints then happen only at recovery and close).
        self.checkpoint_every = checkpoint_every
        self._fsync = fsync
        self._lock = threading.Lock()
        self._wal: WriteAheadLog | None = None
        self._seq = 0
        self._txn_counter = 0
        self._records_since_checkpoint = 0
        self._checkpoints_written = 0
        self._wal_records = 0
        self._closed = False
        self.last_recovery: RecoveryReport | None = None

    # -- discovery -----------------------------------------------------------

    def _scan(self, pattern: re.Pattern[str]) -> dict[int, Path]:
        return _scan_dir(self.data_dir, pattern)

    def _checkpoint_path(self, seq: int) -> Path:
        return self.data_dir / f"checkpoint-{seq:08d}.json"

    def _wal_path(self, seq: int) -> Path:
        return self.data_dir / f"wal-{seq:08d}.jsonl"

    # -- recovery ------------------------------------------------------------

    def recover(self, *, replay: bool = True) -> RecoveryReport:
        """Restore the newest valid checkpoint, replay the WAL tail, then
        collapse the chain into a fresh checkpoint + empty WAL segment.

        Idempotent by construction: replay re-executes committed SQL on
        exactly the state it originally ran against, and a second recovery
        from the same directory reproduces the same database.  Corrupt
        checkpoints fall back to the previous one (their WAL segments are
        still on disk and replay over it); a checkpoint or WAL written by
        a *newer* format version raises :class:`StorageError` instead of
        being silently skipped.

        ``replay=False`` skips the restore phase — for a process whose
        in-memory database *already* reflects the chain (a cluster writer
        child restored it before forking) — but still collapses the chain
        so writes have a live WAL segment to land in.
        """
        start = time.perf_counter()
        self.data_dir.mkdir(parents=True, exist_ok=True)
        if replay:
            report = restore_database(self.engine, self.data_dir)
        else:
            report = RecoveryReport(
                checkpoint_seq=None,
                restored_rows=0,
                replayed=0,
                replay_errors=0,
                duration_ms=0.0,
            )

        self._seq = max([0, *self._scan(_CHECKPOINT_RE), *self._scan(_WAL_RE)])
        # Collapse the chain: one fresh checkpoint bounds the next
        # recovery's replay, and doubles as the initial checkpoint of an
        # empty directory (first boot durably captures the seed).
        self.checkpoint()

        report = replace(
            report, duration_ms=(time.perf_counter() - start) * 1000.0
        )
        self.last_recovery = report
        return report

    def attach(self) -> None:
        """Install this manager as the engine's durable sink."""
        self.engine.transactions.sink = self

    # -- WAL sinks (called by TransactionManager) ----------------------------

    def append_autocommit(self, sql: str) -> None:
        """Durably log one autocommitted statement (record + marker,
        one fsync).  Called inside the statement's database scope."""
        with self._lock:
            txn_id = self._txn_counter
            self._txn_counter += 1
            assert self._wal is not None, "recover() must run before appends"
            self._wal.append_group(txn_id, [sql])
            self._wal_records += 1
            self._records_since_checkpoint += 1

    def append_group(self, statements: list[str]) -> None:
        """Durably log one transaction's statements as a single commit
        group (one fsync for the whole group — the COMMIT durability
        point)."""
        with self._lock:
            txn_id = self._txn_counter
            self._txn_counter += 1
            assert self._wal is not None, "recover() must run before appends"
            self._wal.append_group(txn_id, statements)
            self._wal_records += len(statements)
            self._records_since_checkpoint += len(statements)

    # -- checkpoints ---------------------------------------------------------

    def maybe_checkpoint(self) -> int | None:
        """Checkpoint when the cadence says so; called off the DB lock."""
        if (
            self.checkpoint_every
            and self._records_since_checkpoint >= self.checkpoint_every
        ):
            return self.checkpoint()
        return None

    def checkpoint(self) -> int | None:
        """Write a new checkpoint and rotate the WAL segment.

        Pinning the snapshot and opening the next segment happen together
        under one statement scope (atomic against writers); the expensive
        serialization runs afterwards on the pinned — immutable — view,
        so writers and readers proceed meanwhile.  Skipped (returns None)
        while a transaction is open: uncommitted state must never reach
        disk.
        """
        if self.engine.transactions.active:
            return None
        with self.database.statement_scope():
            with self._lock:
                snapshot = self.database.snapshot()
                seq = self._seq + 1
                old_wal = self._wal
                self._wal = WriteAheadLog(
                    self._wal_path(seq), seq, fsync=self._fsync
                )
                self._seq = seq
                self._records_since_checkpoint = 0
        if old_wal is not None:
            old_wal.close()
        try:
            write_checkpoint(self._checkpoint_path(seq), snapshot, seq)
        finally:
            snapshot.close()
        self._prune(keep_from=seq)
        self._checkpoints_written += 1
        return seq

    def _prune(self, keep_from: int) -> None:
        """Delete checkpoints/segments superseded by checkpoint ``keep_from``
        (only ever called after it is durably in place)."""
        for pattern in (_CHECKPOINT_RE, _WAL_RE):
            for seq, path in self._scan(pattern).items():
                if seq < keep_from:
                    path.unlink(missing_ok=True)
        for path in self.data_dir.glob("*.tmp"):
            path.unlink(missing_ok=True)

    # -- lifecycle / observability ------------------------------------------

    def close(self, *, checkpoint: bool = True) -> None:
        """Detach from the engine; optionally write a shutdown checkpoint
        (graceful shutdown then restarts from checkpoint alone, with an
        empty WAL tail to replay)."""
        if self._closed:
            return
        self._closed = True
        if self.engine.transactions.sink is self:
            self.engine.transactions.sink = None
        if checkpoint:
            self.checkpoint()
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def stats(self) -> dict[str, Any]:
        report = self.last_recovery
        return {
            "data_dir": str(self.data_dir),
            "wal_seq": self._seq,
            "wal_records": self._wal_records,
            "records_since_checkpoint": self._records_since_checkpoint,
            "checkpoints_written": self._checkpoints_written,
            "checkpoint_every": self.checkpoint_every,
            "recovered_rows": report.restored_rows if report else 0,
            "replayed_statements": report.replayed if report else 0,
            "recovery_ms": round(report.duration_ms, 3) if report else 0.0,
        }
