"""Multi-statement transactions installed at the MVCC commit point.

One :class:`TransactionManager` per engine.  ``BEGIN`` pins the current
database state and installs it as the *transaction overlay*: until
COMMIT/ROLLBACK, every ``Database.snapshot()`` call — which is how all
concurrent readers (SELECTs, NLI asks, EXPLAIN) see data — returns a
shared proxy over that pre-transaction view, so nobody outside the
transaction ever observes uncommitted writes.  The transaction's own
statements execute against live storage and see their own effects.

``COMMIT`` first flushes the buffered WAL group (one fsync — the
durability point, taken *outside* the database mutation lock so readers
never stall behind the disk), then atomically clears the overlay and runs
the service-installed ``commit_hook`` (language-layer publish) under one
statement scope — a reader pins either the pre-transaction overlay with
the old layers or the committed state with the new ones, never a mix.

``ROLLBACK`` restores every table from the pinned snapshot
(:meth:`Database.rollback_to` — rows, indexes, statistics, FK state) and
discards the unflushed WAL buffer; nothing ever reached disk.

Works standalone (no storage attached): BEGIN/ROLLBACK then give plain
in-memory transactions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sqlengine.database import Database
    from repro.sqlengine.snapshot import DatabaseSnapshot
    from repro.storage.manager import StorageManager


class TransactionManager:
    """Transaction scope + WAL routing for one engine.

    Thread safety: transaction control and DML are serialized above this
    layer (the service holds its commit-point write lock from BEGIN to
    COMMIT/ROLLBACK), so this class only guards its interaction with the
    database's mutation lock.
    """

    def __init__(self, database: "Database") -> None:
        self.database = database
        #: The durable sink (a StorageManager), attached when a data
        #: directory is configured; None keeps everything in memory.
        self.sink: Optional["StorageManager"] = None
        #: Service-installed publish callback, run inside the COMMIT /
        #: ROLLBACK statement scope (after the overlay clears) so derived
        #: read state (NLI language layers) can never pair a committed
        #: snapshot with pre-commit layers.
        self.commit_hook: Optional[Callable[[], None]] = None
        self._snapshot: Optional["DatabaseSnapshot"] = None
        self._buffer: list[str] = []
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    # -- statement hooks (called by the engine) ------------------------------

    def record(self, sql: str) -> None:
        """Log one successful DML/DDL statement.

        Called *inside* the statement's database scope, so a checkpoint
        rotation (which also holds the scope) can never separate a
        mutation from its WAL record.  Inside a transaction the text is
        buffered in memory — nothing touches disk until COMMIT.
        """
        if self._active:
            self._buffer.append(sql)
        elif self.sink is not None:
            self.sink.append_autocommit(sql)

    def after_statement(self) -> None:
        """Post-statement bookkeeping, called outside any database lock
        (a due checkpoint serializes the snapshot here, off the lock)."""
        if not self._active and self.sink is not None:
            self.sink.maybe_checkpoint()

    # -- transaction control -------------------------------------------------

    def begin(self) -> None:
        if self._active:
            raise TransactionError(
                "a transaction is already open; nested BEGIN is not supported"
            )
        self._snapshot = self.database.begin_overlay()
        self._buffer = []
        self._active = True

    def commit(self) -> None:
        if not self._active:
            raise TransactionError("COMMIT with no open transaction")
        if self.sink is not None and self._buffer:
            # Durability point: one fsync for the whole group, before the
            # overlay clears and without the mutation lock held.
            self.sink.append_group(self._buffer)
        try:
            with self.database.statement_scope():
                self.database.clear_overlay()
                if self.commit_hook is not None:
                    self.commit_hook()
        finally:
            # Drop — never close() — the overlay snapshot: concurrent
            # readers may still hold shared proxies over it; the GC
            # finalizer releases the pins after the last one lets go.
            self._snapshot = None
            self._buffer = []
            self._active = False
        if self.sink is not None:
            self.sink.maybe_checkpoint()

    def rollback(self) -> None:
        if not self._active:
            raise TransactionError("ROLLBACK with no open transaction")
        snapshot = self._snapshot
        try:
            with self.database.statement_scope():
                assert snapshot is not None
                self.database.rollback_to(snapshot)
                self.database.clear_overlay()
                if self.commit_hook is not None:
                    self.commit_hook()
        finally:
            self._snapshot = None
            self._buffer = []
            self._active = False
