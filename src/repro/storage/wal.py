"""The write-ahead log: an append-only JSONL file of committed SQL text.

Layout (one JSON object per line):

.. code-block:: text

    {"magic": "repro-wal", "format": 1, "seq": 3}     <- header
    {"txn": 0, "sql": "INSERT INTO ship ..."}          <- statement
    {"commit": 0}                                      <- commit marker
    {"txn": 1, "sql": "UPDATE ship ..."}
    {"txn": 1, "sql": "DELETE FROM mission ..."}
    {"commit": 1}

Replay is *logical*: records carry the statement's SQL text, re-executed
through the engine on recovery (execution is deterministic).  A group's
statements only count once its ``commit`` marker is on disk — an
autocommit statement writes its record and marker in one buffered write
and one fsync, a multi-statement transaction buffers in memory and
flushes the whole group at COMMIT — so a crash mid-transaction leaves
nothing replayable and the uncommitted block is fully absent after
recovery.

Torn-tail tolerance mirrors :mod:`repro.service.persistence`: a crash
mid-append leaves at most one undecodable final line, skipped on read.
The header's ``format`` field is the migration hook: readers apply
:data:`WAL_MIGRATIONS` to older formats and refuse newer ones.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import StorageError

WAL_MAGIC = "repro-wal"
#: Current on-disk format.  Bump when the record layout changes and add a
#: migration below.
WAL_FORMAT = 1

#: ``{old_format: record_migrator}`` — each migrator rewrites one decoded
#: record dict from ``old_format`` to ``old_format + 1``.  Empty today;
#: the version header exists so tomorrow's change is a dict entry, not a
#: flag day.
WAL_MIGRATIONS: dict[int, Callable[[dict[str, Any]], dict[str, Any]]] = {}


class WriteAheadLog:
    """Appender for one WAL segment file.

    The file (and its header line) is created lazily on the first append;
    every append is one buffered write, one flush and — unless ``fsync``
    is disabled — one ``os.fsync``, so an acknowledged statement survives
    ``kill -9``.
    """

    def __init__(
        self, path: str | os.PathLike[str], seq: int, *, fsync: bool = True
    ) -> None:
        self.path = Path(path)
        self.seq = seq
        self.records = 0
        self._fsync = fsync
        self._file: Any = None

    def _handle(self) -> Any:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
            if self._file.tell() == 0:
                header = {"magic": WAL_MAGIC, "format": WAL_FORMAT, "seq": self.seq}
                self._file.write(json.dumps(header) + "\n")
        return self._file

    def append_group(self, txn_id: int, statements: Iterable[str]) -> int:
        """Durably append one commit group (statements + commit marker).

        Single buffered write + flush + fsync: either the whole group
        (with its marker) is replayable after a crash, or none of it is.
        """
        lines = [
            json.dumps({"txn": txn_id, "sql": sql}, ensure_ascii=False)
            for sql in statements
        ]
        if not lines:
            return 0
        lines.append(json.dumps({"commit": txn_id}))
        handle = self._handle()
        handle.write("\n".join(lines) + "\n")
        handle.flush()
        if self._fsync:
            os.fsync(handle.fileno())
        self.records += len(lines) - 1
        return len(lines) - 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_wal(path: str | os.PathLike[str]) -> list[str]:
    """Return the committed statements of one WAL segment, in commit order.

    * undecodable lines (the torn tail of a crash mid-append) are skipped;
    * statements without a ``commit`` marker (a transaction interrupted by
      the crash) are dropped entirely;
    * a missing/garbled header makes the file empty (a crash at creation);
    * a header from a *newer* format raises :class:`StorageError`, an
      older one is migrated through :data:`WAL_MIGRATIONS`.
    """
    path = Path(path)
    if not path.exists():
        return []
    pending: dict[int, list[str]] = {}
    committed: list[str] = []
    migrators: list[Callable[[dict[str, Any]], dict[str, Any]]] = []
    saw_header = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail (or corruption): skip the line
            if not isinstance(record, dict):
                continue
            if not saw_header:
                if record.get("magic") != WAL_MAGIC:
                    return []  # not a WAL header: treat the file as empty
                fmt = record.get("format")
                if not isinstance(fmt, int) or fmt > WAL_FORMAT:
                    raise StorageError(
                        f"{path.name}: WAL format {fmt!r} is newer than "
                        f"supported format {WAL_FORMAT}"
                    )
                while fmt < WAL_FORMAT:
                    migrators.append(WAL_MIGRATIONS[fmt])
                    fmt += 1
                saw_header = True
                continue
            for migrate in migrators:
                record = migrate(record)
            if "sql" in record:
                pending.setdefault(record.get("txn", 0), []).append(record["sql"])
            elif "commit" in record:
                committed.extend(pending.pop(record["commit"], []))
    return committed
