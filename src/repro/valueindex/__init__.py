"""Inverted index over database values for question-phrase grounding."""

from repro.valueindex.index import ValueHit, ValueIndex, stemmed_phrase_key

__all__ = ["ValueHit", "ValueIndex", "stemmed_phrase_key"]
