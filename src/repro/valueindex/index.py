"""Inverted index over database string values.

Maps word sequences in questions ("norfolk", "pacific", "stanislaw lem")
to the ``(table, column, value)`` triples that contain them, so the tagger
can turn unknown words into :class:`~repro.logical.forms.ValueRef`
candidates — the mechanism SODA and friends called *value-based lookup*,
and that 1978 systems implemented as "file-content lexicons".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.spelling import SpellingCorrector
from repro.nlp.stemmer import stem
from repro.sqlengine.database import Database
from repro.sqlengine.types import SqlType


@dataclass(frozen=True)
class ValueHit:
    """One value match for a question phrase."""

    table: str
    column: str
    value: str
    exact: bool  # False when reached via spelling correction


def _normalise_phrase(text: str) -> tuple[str, ...]:
    return tuple(word for word in text.lower().replace("-", " ").split() if word)


class ValueIndex:
    """Phrase index over all TEXT columns of a database.

    ``max_values_per_column`` guards against indexing an enormous free-text
    column; high-cardinality prose columns are unlikely to be referenced by
    name in a question anyway.
    """

    def __init__(
        self,
        database: Database,
        max_values_per_column: int | None = None,
        excluded_columns: set[tuple[str, str]] | None = None,
    ) -> None:
        self.database = database
        self._phrase_map: dict[tuple[str, ...], list[ValueHit]] = {}
        self._stem_map: dict[tuple[str, ...], list[ValueHit]] = {}
        self._word_vocabulary = SpellingCorrector()
        self._max_phrase_len = 1
        excluded = excluded_columns or set()
        for table in database.tables():
            for column in table.schema.columns:
                if column.sql_type is not SqlType.TEXT:
                    continue
                if (table.name, column.name) in excluded:
                    continue
                seen = 0
                for value in table.column_values(column.name):
                    if value is None:
                        continue
                    seen += 1
                    if max_values_per_column and seen > max_values_per_column:
                        break
                    self._add_value(table.name, column.name, value)

    def _add_value(self, table: str, column: str, value: str) -> None:
        phrase = _normalise_phrase(value)
        if not phrase:
            return
        hit = ValueHit(table, column, value, exact=True)
        bucket = self._phrase_map.setdefault(phrase, [])
        if not any(
            h.table == table and h.column == column and h.value == value
            for h in bucket
        ):
            bucket.append(hit)
        stemmed = tuple(stem(word) for word in phrase)
        if stemmed != phrase:
            stem_bucket = self._stem_map.setdefault(stemmed, [])
            if not any(
                h.table == table and h.column == column and h.value == value
                for h in stem_bucket
            ):
                stem_bucket.append(ValueHit(table, column, value, exact=False))
        self._max_phrase_len = max(self._max_phrase_len, len(phrase))
        for word in phrase:
            self._word_vocabulary.add_word(word)

    # -- lookup -------------------------------------------------------------

    @property
    def max_phrase_len(self) -> int:
        return self._max_phrase_len

    def lookup(self, words: list[str]) -> list[ValueHit]:
        """Lookup of a word sequence: exact first, stemmed as fallback.

        The stemmed fallback lets "admirals" reach the stored value
        "admiral"; exact matches win when both exist.
        """
        key = tuple(w.lower() for w in words)
        hits = list(self._phrase_map.get(key, []))
        stemmed = tuple(stem(w) for w in key)
        for hit in self._stem_map.get(stemmed, []):
            if not any(
                h.table == hit.table and h.column == hit.column and h.value == hit.value
                for h in hits
            ):
                hits.append(hit)
        return hits

    def lookup_prefix(self, words: list[str]) -> list[tuple[int, ValueHit]]:
        """All value matches starting at the front of ``words``.

        Returns ``(length, hit)`` pairs, longest first, so the tagger can
        prefer maximal matches ("new york city" over "new york").
        """
        out: list[tuple[int, ValueHit]] = []
        limit = min(len(words), self._max_phrase_len)
        for length in range(limit, 0, -1):
            for hit in self.lookup(words[:length]):
                out.append((length, hit))
        return out

    def fuzzy_word(self, word: str) -> str | None:
        """Spelling-correct a single word against the value vocabulary."""
        correction = self._word_vocabulary.correct(word)
        if correction is None or correction.distance == 0:
            return None
        return correction.corrected

    def contains_word(self, word: str) -> bool:
        return word.lower() in self._word_vocabulary

    def vocabulary_words(self) -> int:
        return len(self._word_vocabulary)

    def stats(self) -> dict[str, int]:
        return {
            "phrases": len(self._phrase_map),
            "words": self.vocabulary_words(),
            "max_phrase_len": self._max_phrase_len,
        }


def stemmed_phrase_key(text: str) -> tuple[str, ...]:
    """Stem-normalised phrase key shared with the lexicon."""
    return tuple(stem(word) for word in _normalise_phrase(text))
