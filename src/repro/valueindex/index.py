"""Inverted index over database string values.

Maps word sequences in questions ("norfolk", "pacific", "stanislaw lem")
to the ``(table, column, value)`` triples that contain them, so the tagger
can turn unknown words into :class:`~repro.logical.forms.ValueRef`
candidates — the mechanism SODA and friends called *value-based lookup*,
and that 1978 systems implemented as "file-content lexicons".

The index is **incrementally maintainable**: every entry is reference
counted per live row, so :meth:`ValueIndex.apply_delta` can consume the
row-level :class:`~repro.sqlengine.table.TableDelta` stream emitted by
table mutations and add/remove phrase entries in O(changed values) instead
of rebuilding from the whole database.  A full rebuild is only needed on
catalog DDL (create/drop table), which the NLI layer handles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.spelling import SpellingCorrector
from repro.nlp.stemmer import stem
from repro.sqlengine.database import Database
from repro.sqlengine.table import TableDelta
from repro.sqlengine.types import SqlType
from repro.valueindex.pmap import PMap


@dataclass(frozen=True)
class ValueHit:
    """One value match for a question phrase."""

    table: str
    column: str
    value: str
    exact: bool  # False when reached via spelling correction


def _normalise_phrase(text: str) -> tuple[str, ...]:
    return tuple(word for word in text.lower().replace("-", " ").split() if word)


class ValueIndex:
    """Phrase index over all TEXT columns of a database.

    ``max_values_per_column`` guards against indexing an enormous free-text
    column; high-cardinality prose columns are unlikely to be referenced by
    name in a question anyway.  The cap is enforced per column across the
    initial build *and* later incremental additions.
    """

    def __init__(
        self,
        database: Database,
        max_values_per_column: int | None = None,
        excluded_columns: set[tuple[str, str]] | None = None,
    ) -> None:
        self.database = database
        self._max_values_per_column = max_values_per_column
        self._excluded = excluded_columns or set()
        self._phrase_map: dict[tuple[str, ...], list[ValueHit]] | PMap = {}
        self._stem_map: dict[tuple[str, ...], list[ValueHit]] | PMap = {}
        self._word_vocabulary = SpellingCorrector()
        self._max_phrase_len = 1
        #: Persistent mode (:meth:`to_persistent`): the maps become
        #: structurally-shared PMaps with tuple buckets, mutations replace
        #: map references, and :meth:`clone` is O(1).
        self._persistent = False
        #: Live-row reference count per (table, column, value): entries are
        #: only unindexed when the *last* row holding the value goes away.
        self._occurrences: dict[tuple[str, str, str], int] | PMap = {}
        #: Occurrences admitted per (table, column), for the cap.
        self._column_seen: dict[tuple[str, str], int] | PMap = {}
        for table in database.tables():
            for column in table.schema.columns:
                if column.sql_type is not SqlType.TEXT:
                    continue
                if (table.name, column.name) in self._excluded:
                    continue
                for value in table.column_values(column.name):
                    if value is None:
                        continue
                    if not self.add_value(table.name, column.name, value):
                        break  # column hit its cap

    # -- incremental maintenance --------------------------------------------

    def to_persistent(self) -> None:
        """Convert to persistent (structurally-shared) maps, in place.

        Done once when an owner enables publish-mode refreshes; afterwards
        every mutation is a functional map update and :meth:`clone` costs
        O(1), so a publish round-trip is O(changed values) instead of the
        dict copy's O(indexed values).
        """
        if self._persistent:
            return
        self._phrase_map = PMap.from_dict(
            {key: tuple(hits) for key, hits in self._phrase_map.items()}
        )
        self._stem_map = PMap.from_dict(
            {key: tuple(hits) for key, hits in self._stem_map.items()}
        )
        self._occurrences = PMap.from_dict(self._occurrences)
        self._column_seen = PMap.from_dict(self._column_seen)
        self._word_vocabulary.to_persistent()
        self._persistent = True

    def clone(self) -> ValueIndex:
        """Independent copy sharing nothing *mutable* with the original.

        Used for copy-on-write refreshes: a publisher patches the clone
        with pending deltas and swaps it in atomically, so readers on the
        old index never observe a half-applied delta.  In persistent mode
        the clone aliases the current maps — O(1) — and both sides'
        subsequent mutations build new structure without touching shared
        nodes.  Dict mode deep-copies (O(indexed values), still far below
        the full rebuild's O(database rows) re-scan).
        """
        out = ValueIndex.__new__(ValueIndex)
        out.database = self.database
        out._max_values_per_column = self._max_values_per_column
        out._excluded = self._excluded
        out._persistent = self._persistent
        out._word_vocabulary = self._word_vocabulary.clone()
        out._max_phrase_len = self._max_phrase_len
        if self._persistent:
            out._phrase_map = self._phrase_map
            out._stem_map = self._stem_map
            out._occurrences = self._occurrences
            out._column_seen = self._column_seen
            return out
        out._phrase_map = {key: list(hits) for key, hits in self._phrase_map.items()}
        out._stem_map = {key: list(hits) for key, hits in self._stem_map.items()}
        out._occurrences = dict(self._occurrences)
        out._column_seen = dict(self._column_seen)
        return out

    def add_value(self, table: str, column: str, value: str) -> bool:
        """Count one live occurrence of ``value``; index it when new.

        Returns False when the column's cap rejected the occurrence.  The
        cap only gates values *not yet indexed*: a further occurrence of an
        admitted value must always count, or the matching removal would
        steal the refcount of a still-live row.
        """
        column_key = (table, column)
        seen = self._column_seen.get(column_key, 0)
        occurrence_key = (table, column, value)
        count = self._occurrences.get(occurrence_key, 0)
        if (
            count == 0
            and self._max_values_per_column is not None
            and seen >= self._max_values_per_column
        ):
            return False
        if self._persistent:
            self._column_seen = self._column_seen.set(column_key, seen + 1)
            self._occurrences = self._occurrences.set(occurrence_key, count + 1)
        else:
            self._column_seen[column_key] = seen + 1
            self._occurrences[occurrence_key] = count + 1
        phrase = _normalise_phrase(value)
        if not phrase:
            return True
        # Vocabulary weights are per occurrence, so frequent values win
        # spelling-correction tie-breaks; phrase entries are deduplicated.
        for word in phrase:
            self._word_vocabulary.add_word(word)
        if count == 0:
            self._index_phrase(phrase, table, column, value)
        return True

    def remove_value(self, table: str, column: str, value: str) -> None:
        """Drop one live occurrence; unindex when none remain."""
        occurrence_key = (table, column, value)
        count = self._occurrences.get(occurrence_key, 0)
        if count == 0:
            return  # never admitted (cap) or already gone
        column_key = (table, column)
        seen = max(0, self._column_seen.get(column_key, 0) - 1)
        if self._persistent:
            self._column_seen = self._column_seen.set(column_key, seen)
        else:
            self._column_seen[column_key] = seen
        phrase = _normalise_phrase(value)
        if count > 1:
            if self._persistent:
                self._occurrences = self._occurrences.set(occurrence_key, count - 1)
            else:
                self._occurrences[occurrence_key] = count - 1
            for word in phrase:
                self._word_vocabulary.remove_word(word)
            return
        if self._persistent:
            self._occurrences = self._occurrences.delete(occurrence_key)
        else:
            del self._occurrences[occurrence_key]
        if not phrase:
            return
        for word in phrase:
            self._word_vocabulary.remove_word(word)
        self._unindex_phrase(phrase, table, column, value)

    def apply_delta(self, delta: TableDelta) -> None:
        """Consume one table mutation's string-value delta.

        O(changed values): adds/removes exactly the phrases the mutation
        touched.  DDL deltas (index creation) carry no values and are a
        no-op here.
        """
        for column, value in delta.removed:
            if (delta.table, column) not in self._excluded:
                self.remove_value(delta.table, column, value)
        for column, value in delta.added:
            if (delta.table, column) not in self._excluded:
                self.add_value(delta.table, column, value)

    def _index_phrase(
        self, phrase: tuple[str, ...], table: str, column: str, value: str
    ) -> None:
        exact_hit = ValueHit(table, column, value, exact=True)
        stemmed = tuple(stem(word) for word in phrase)
        if self._persistent:
            self._phrase_map = self._phrase_map.set(
                phrase, self._phrase_map.get(phrase, ()) + (exact_hit,)
            )
            if stemmed != phrase:
                self._stem_map = self._stem_map.set(
                    stemmed,
                    self._stem_map.get(stemmed, ())
                    + (ValueHit(table, column, value, exact=False),),
                )
        else:
            self._phrase_map.setdefault(phrase, []).append(exact_hit)
            if stemmed != phrase:
                self._stem_map.setdefault(stemmed, []).append(
                    ValueHit(table, column, value, exact=False)
                )
        self._max_phrase_len = max(self._max_phrase_len, len(phrase))

    def _unindex_phrase(
        self, phrase: tuple[str, ...], table: str, column: str, value: str
    ) -> None:
        # _max_phrase_len stays a (harmless) upper bound: lookup_prefix
        # just probes lengths that no longer exist.
        doomed = (table, column, value)
        if self._persistent:
            for attr, key in (
                ("_phrase_map", phrase),
                ("_stem_map", tuple(stem(word) for word in phrase)),
            ):
                mapping = getattr(self, attr)
                bucket = mapping.get(key)
                if bucket is None:
                    continue
                bucket = tuple(
                    h for h in bucket if (h.table, h.column, h.value) != doomed
                )
                setattr(
                    self,
                    attr,
                    mapping.set(key, bucket) if bucket else mapping.delete(key),
                )
            return
        for mapping, key in (
            (self._phrase_map, phrase),
            (self._stem_map, tuple(stem(word) for word in phrase)),
        ):
            bucket = mapping.get(key)
            if bucket is None:
                continue
            bucket[:] = [
                h for h in bucket if (h.table, h.column, h.value) != doomed
            ]
            if not bucket:
                del mapping[key]

    # -- lookup -------------------------------------------------------------

    @property
    def max_phrase_len(self) -> int:
        return self._max_phrase_len

    def lookup(self, words: list[str]) -> list[ValueHit]:
        """Lookup of a word sequence: exact first, stemmed as fallback.

        The stemmed fallback lets "admirals" reach the stored value
        "admiral"; exact matches win when both exist.
        """
        key = tuple(w.lower() for w in words)
        hits = list(self._phrase_map.get(key, []))
        stemmed = tuple(stem(w) for w in key)
        for hit in self._stem_map.get(stemmed, []):
            if not any(
                h.table == hit.table and h.column == hit.column and h.value == hit.value
                for h in hits
            ):
                hits.append(hit)
        return hits

    def lookup_prefix(self, words: list[str]) -> list[tuple[int, ValueHit]]:
        """All value matches starting at the front of ``words``.

        Returns ``(length, hit)`` pairs, longest first, so the tagger can
        prefer maximal matches ("new york city" over "new york").
        """
        out: list[tuple[int, ValueHit]] = []
        limit = min(len(words), self._max_phrase_len)
        for length in range(limit, 0, -1):
            for hit in self.lookup(words[:length]):
                out.append((length, hit))
        return out

    def fuzzy_word(self, word: str) -> str | None:
        """Spelling-correct a single word against the value vocabulary."""
        correction = self._word_vocabulary.correct(word)
        if correction is None or correction.distance == 0:
            return None
        return correction.corrected

    def contains_word(self, word: str) -> bool:
        return word.lower() in self._word_vocabulary

    def vocabulary_words(self) -> int:
        return len(self._word_vocabulary)

    def stats(self) -> dict[str, int]:
        return {
            "phrases": len(self._phrase_map),
            "words": self.vocabulary_words(),
            "max_phrase_len": self._max_phrase_len,
        }


def stemmed_phrase_key(text: str) -> tuple[str, ...]:
    """Stem-normalised phrase key shared with the lexicon."""
    return tuple(stem(word) for word in _normalise_phrase(text))
