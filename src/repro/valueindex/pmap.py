"""Persistent hash maps (HAMT) for copy-on-write publishers.

A :class:`PMap` is an immutable mapping: :meth:`set` and :meth:`delete`
return a *new* map that shares all unchanged structure with the old one
(a hash array mapped trie — 32-way branching on 5-bit hash chunks), so a
single-key update copies O(log32 n) small nodes and leaves everything
else aliased.

This is what makes the MVCC publish path cheap: a value index whose
phrase/occurrence tables are PMaps can hand concurrent readers its
current maps *by reference* — cloning is O(1) attribute copying — and
apply a delta as functional updates that can never be observed
half-applied, because the reader's references still point at the old
root nodes.  The previous publish mode deep-copied every dict per
refresh (O(indexed values) per write round-trip).

Pure Python, no dependencies.  Keys must be hashable; full-hash
collisions fall back to small collision buckets.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

_BITS = 5
_MASK = (1 << _BITS) - 1  # 31
#: Python hashes are masked to 32 bits for trie navigation; keys whose
#: masked hashes fully collide land in a _Collision bucket (checked
#: before descending, so the trie never recurses past differing bits).
_HASH_MASK = 0xFFFFFFFF

_ABSENT = object()


def _hash(key: Any) -> int:
    return hash(key) & _HASH_MASK


class _Leaf:
    """One key/value pair."""

    __slots__ = ("hash", "key", "value")

    def __init__(self, h: int, key: Any, value: Any) -> None:
        self.hash = h
        self.key = key
        self.value = value


class _Collision:
    """Distinct keys whose 32-bit hashes are identical."""

    __slots__ = ("hash", "pairs")

    def __init__(self, h: int, pairs: tuple[tuple[Any, Any], ...]) -> None:
        self.hash = h
        self.pairs = pairs


class _Node:
    """Bitmap-compressed branch: children packed by set bits."""

    __slots__ = ("bitmap", "children")

    def __init__(self, bitmap: int, children: tuple[Any, ...]) -> None:
        self.bitmap = bitmap
        self.children = children


def _index(bitmap: int, bit: int) -> int:
    """Packed position of ``bit``'s child (popcount of lower bits)."""
    return (bitmap & (bit - 1)).bit_count()


def _merge(shift: int, a: Any, b: _Leaf) -> Any:
    """Branch holding two leaves/collisions that disagree below ``shift``."""
    if a.hash == b.hash:
        if isinstance(a, _Collision):
            return _Collision(a.hash, a.pairs + ((b.key, b.value),))
        return _Collision(a.hash, ((a.key, a.value), (b.key, b.value)))
    a_bit = 1 << ((a.hash >> shift) & _MASK)
    b_bit = 1 << ((b.hash >> shift) & _MASK)
    if a_bit == b_bit:
        return _Node(a_bit, (_merge(shift + _BITS, a, b),))
    children = (a, b) if a_bit < b_bit else (b, a)
    return _Node(a_bit | b_bit, children)


def _get(node: Any, shift: int, h: int, key: Any) -> Any:
    while isinstance(node, _Node):
        bit = 1 << ((h >> shift) & _MASK)
        if not node.bitmap & bit:
            return _ABSENT
        node = node.children[_index(node.bitmap, bit)]
        shift += _BITS
    if isinstance(node, _Leaf):
        if node.hash == h and node.key == key:
            return node.value
        return _ABSENT
    # _Collision
    if node.hash != h:
        return _ABSENT
    for k, v in node.pairs:
        if k == key:
            return v
    return _ABSENT


def _set(node: Any, shift: int, h: int, key: Any, value: Any) -> tuple[Any, bool]:
    """Returns ``(new_node, key_was_added)``."""
    if isinstance(node, _Node):
        bit = 1 << ((h >> shift) & _MASK)
        idx = _index(node.bitmap, bit)
        if node.bitmap & bit:
            child, added = _set(node.children[idx], shift + _BITS, h, key, value)
            children = node.children[:idx] + (child,) + node.children[idx + 1 :]
            return _Node(node.bitmap, children), added
        children = node.children[:idx] + (_Leaf(h, key, value),) + node.children[idx:]
        return _Node(node.bitmap | bit, children), True
    if isinstance(node, _Leaf):
        if node.hash == h and node.key == key:
            return _Leaf(h, key, value), False
        return _merge(shift, node, _Leaf(h, key, value)), True
    # _Collision
    if node.hash == h:
        for i, (k, _) in enumerate(node.pairs):
            if k == key:
                pairs = node.pairs[:i] + ((key, value),) + node.pairs[i + 1 :]
                return _Collision(h, pairs), False
        return _Collision(h, node.pairs + ((key, value),)), True
    return _merge(shift, node, _Leaf(h, key, value)), True


def _delete(node: Any, shift: int, h: int, key: Any) -> Any:
    """New node without ``key`` (possibly None), or ``_ABSENT`` when missing."""
    if isinstance(node, _Node):
        bit = 1 << ((h >> shift) & _MASK)
        if not node.bitmap & bit:
            return _ABSENT
        idx = _index(node.bitmap, bit)
        child = _delete(node.children[idx], shift + _BITS, h, key)
        if child is _ABSENT:
            return _ABSENT
        if child is None:
            bitmap = node.bitmap & ~bit
            children = node.children[:idx] + node.children[idx + 1 :]
            if len(children) == 1 and not isinstance(children[0], _Node):
                return children[0]  # collapse single-entry branches
            if not children:
                return None
            return _Node(bitmap, children)
        children = node.children[:idx] + (child,) + node.children[idx + 1 :]
        if len(children) == 1 and not isinstance(children[0], _Node):
            return children[0]
        return _Node(node.bitmap, children)
    if isinstance(node, _Leaf):
        if node.hash == h and node.key == key:
            return None
        return _ABSENT
    # _Collision
    if node.hash != h:
        return _ABSENT
    pairs = tuple((k, v) for k, v in node.pairs if k != key)
    if len(pairs) == len(node.pairs):
        return _ABSENT
    if len(pairs) == 1:
        return _Leaf(h, pairs[0][0], pairs[0][1])
    return _Collision(h, pairs)


def _iter_items(node: Any) -> Iterator[tuple[Any, Any]]:
    if node is None:
        return
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, _Node):
            stack.extend(reversed(current.children))
        elif isinstance(current, _Leaf):
            yield current.key, current.value
        else:
            yield from current.pairs


class PMap:
    """Immutable hash map with structural sharing.

    >>> m = PMap.from_dict({"a": 1})
    >>> m2 = m.set("b", 2)
    >>> sorted(m2.items()), len(m), "b" in m
    ([('a', 1), ('b', 2)], 1, False)
    """

    __slots__ = ("_root", "_count")

    def __init__(self, root: Any = None, count: int = 0) -> None:
        self._root = root
        self._count = count

    @classmethod
    def from_dict(cls, mapping: Mapping[Any, Any]) -> "PMap":
        out = _EMPTY
        for key, value in mapping.items():
            out = out.set(key, value)
        return out

    def get(self, key: Any, default: Any = None) -> Any:
        if self._root is None:
            return default
        value = _get(self._root, 0, _hash(key), key)
        return default if value is _ABSENT else value

    def __getitem__(self, key: Any) -> Any:
        value = self.get(key, _ABSENT)
        if value is _ABSENT:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _ABSENT) is not _ABSENT

    def set(self, key: Any, value: Any) -> "PMap":
        if self._root is None:
            return PMap(_Leaf(_hash(key), key, value), 1)
        root, added = _set(self._root, 0, _hash(key), key, value)
        return PMap(root, self._count + 1 if added else self._count)

    def delete(self, key: Any) -> "PMap":
        """Map without ``key``; returns self when the key is absent."""
        if self._root is None:
            return self
        root = _delete(self._root, 0, _hash(key), key)
        if root is _ABSENT:
            return self
        return PMap(root, self._count - 1)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Any]:
        for key, _ in _iter_items(self._root):
            yield key

    def items(self) -> Iterator[tuple[Any, Any]]:
        return _iter_items(self._root)

    def keys(self) -> Iterator[Any]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        for _, value in _iter_items(self._root):
            yield value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PMap({dict(self.items())!r})"


_EMPTY = PMap()
