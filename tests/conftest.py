"""Shared fixtures: a small, hand-checkable library database."""

from __future__ import annotations

import pytest

from repro.sqlengine import Column, Database, Engine, ForeignKey, SqlType, TableSchema


def make_library_db() -> Database:
    """Authors/books/loans — small enough to verify answers by hand."""
    db = Database("library")
    db.create_table(
        TableSchema(
            "author",
            [
                Column("id", SqlType.INT, nullable=False),
                Column("name", SqlType.TEXT, nullable=False),
                Column("country", SqlType.TEXT),
                Column("born", SqlType.INT),
            ],
            primary_key="id",
        )
    )
    db.create_table(
        TableSchema(
            "book",
            [
                Column("id", SqlType.INT, nullable=False),
                Column("title", SqlType.TEXT, nullable=False),
                Column("author_id", SqlType.INT),
                Column("year", SqlType.INT),
                Column("pages", SqlType.INT),
                Column("price", SqlType.FLOAT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("author_id", "author", "id")],
        )
    )
    db.create_table(
        TableSchema(
            "loan",
            [
                Column("id", SqlType.INT, nullable=False),
                Column("book_id", SqlType.INT),
                Column("member", SqlType.TEXT),
                Column("returned", SqlType.BOOL),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("book_id", "book", "id")],
        )
    )
    authors = [
        (1, "Ursula Le Guin", "usa", 1929),
        (2, "Stanislaw Lem", "poland", 1921),
        (3, "Octavia Butler", "usa", 1947),
        (4, "Italo Calvino", "italy", 1923),
    ]
    books = [
        (1, "The Dispossessed", 1, 1974, 387, 9.99),
        (2, "The Left Hand of Darkness", 1, 1969, 304, 8.50),
        (3, "Solaris", 2, 1961, 204, 7.25),
        (4, "Kindred", 3, 1979, 264, 10.00),
        (5, "Invisible Cities", 4, 1972, 165, 6.75),
        (6, "The Cyberiad", 2, 1965, 295, None),
    ]
    loans = [
        (1, 1, "ada", True),
        (2, 3, "grace", False),
        (3, 3, "ada", True),
        (4, 5, "edsger", False),
    ]
    for row in authors:
        db.insert("author", row)
    for row in books:
        db.insert("book", row)
    for row in loans:
        db.insert("loan", row)
    return db


@pytest.fixture()
def library_db() -> Database:
    return make_library_db()


@pytest.fixture()
def engine(library_db: Database) -> Engine:
    return Engine(library_db)
