"""Pin the exact answer of every t1–t5 benchmark question.

``tests/data/benchmark_pins.json`` stores the normalized answer set of
each corpus, wild, and dialogue question used by the t-benchmarks, plus
the deliberately ambiguous t5 set.  The benchmarks themselves assert
rates (accuracy >= 90%, NLI beats baselines by 20 points, ...); these
tests assert the *answers*, so a change that shifts any single gold
result — an engine regression, a dataset edit, a corpus rewrite — fails
loudly here even when the rates stay above their thresholds.

Regenerate after an intentional dataset change with::

    PYTHONPATH=src python tests/test_benchmark_answers_pinned.py
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core.pipeline import NaturalLanguageInterface
from repro.datasets import load_bundle
from repro.evaluation.goldsets import normalize_answer
from repro.sqlengine import Engine

try:
    from benchmarks.bench_t5_ambiguity import AMBIGUOUS_FLEET
except ModuleNotFoundError:  # direct script invocation from anywhere
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.bench_t5_ambiguity import AMBIGUOUS_FLEET

PINS_PATH = Path(__file__).parent / "data" / "benchmark_pins.json"

#: The domains the t1–t5 benchmarks run over (benchmarks/conftest.py).
BENCH_DOMAINS = ("fleet", "company", "geography")


def _pin(engine, question, sql, **extra):
    result = engine.execute(sql)
    return {
        "question": question,
        "sql": sql,
        "columns": len(result.columns),
        "answer": normalize_answer(result),
        **extra,
    }


def build_pins() -> dict:
    document = {"format": "repro-benchmark-pins", "version": 1, "domains": {}}
    for name in BENCH_DOMAINS:
        bundle = load_bundle(name)
        engine = Engine(bundle.database)
        document["domains"][name] = {
            "corpus": [
                _pin(engine, e.question, e.gold_sql) for e in bundle.corpus
            ],
            "wild": [
                _pin(engine, e.question, e.gold_sql) for e in bundle.wild
            ],
            "dialogues": [
                [
                    _pin(engine, t.question, t.gold_sql, followup=t.is_followup)
                    for t in script
                ]
                for script in bundle.dialogues
            ],
        }
    fleet = load_bundle("fleet")
    engine = Engine(fleet.database)
    document["ambiguous_fleet"] = [
        _pin(engine, question, sql) for question, sql in AMBIGUOUS_FLEET
    ]
    return document


@pytest.fixture(scope="module")
def pins():
    return json.loads(PINS_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module", params=BENCH_DOMAINS)
def domain(request):
    return request.param


@pytest.fixture(scope="module")
def bundle(domain):
    return load_bundle(domain)


@pytest.fixture(scope="module")
def engine(bundle):
    return Engine(bundle.database)


class TestCoverage:
    """The pins file covers exactly the questions the benchmarks ask."""

    def test_corpus_questions_covered(self, pins, domain, bundle):
        pinned = [p["question"] for p in pins["domains"][domain]["corpus"]]
        assert pinned == [e.question for e in bundle.corpus]

    def test_wild_questions_covered(self, pins, domain, bundle):
        pinned = [p["question"] for p in pins["domains"][domain]["wild"]]
        assert pinned == [e.question for e in bundle.wild]

    def test_dialogue_turns_covered(self, pins, domain, bundle):
        pinned = pins["domains"][domain]["dialogues"]
        assert [
            [(t["question"], t["followup"]) for t in script]
            for script in pinned
        ] == [
            [(t.question, t.is_followup) for t in script]
            for script in bundle.dialogues
        ]

    def test_ambiguous_set_covered(self, pins):
        assert [p["question"] for p in pins["ambiguous_fleet"]] == [
            question for question, _ in AMBIGUOUS_FLEET
        ]
        assert [p["sql"] for p in pins["ambiguous_fleet"]] == [
            sql for _, sql in AMBIGUOUS_FLEET
        ]


def _assert_pin_holds(engine, pin):
    result = engine.execute(pin["sql"])
    assert len(result.columns) == pin["columns"], pin["question"]
    assert normalize_answer(result) == pin["answer"], pin["question"]


class TestAnswersUnchanged:
    """Executing each pinned gold SQL still yields the pinned answer."""

    def test_corpus(self, pins, domain, engine):
        for pin in pins["domains"][domain]["corpus"]:
            _assert_pin_holds(engine, pin)

    def test_wild(self, pins, domain, engine):
        for pin in pins["domains"][domain]["wild"]:
            _assert_pin_holds(engine, pin)

    def test_dialogues(self, pins, domain, engine):
        for script in pins["domains"][domain]["dialogues"]:
            for pin in script:
                _assert_pin_holds(engine, pin)

    def test_ambiguous_fleet(self, pins):
        bundle = load_bundle("fleet")
        engine = Engine(bundle.database)
        for pin in pins["ambiguous_fleet"]:
            _assert_pin_holds(engine, pin)


class TestNliTop1Pinned:
    """t5's top-1 resolution: the NLI's preferred reading stays the gold one.

    The benchmark tolerates one miss (``top1 >= n - 1``); the current
    system resolves all five, and this pin keeps it that way.
    """

    def test_ambiguous_fleet_top1(self, pins):
        bundle = load_bundle("fleet")
        nli = NaturalLanguageInterface(bundle.database, domain=bundle.model)
        for pin in pins["ambiguous_fleet"]:
            response = nli.ask(pin["question"])
            assert response.ok, (pin["question"], response.diagnostics)
            produced = normalize_answer(response.answer.result)
            assert produced == pin["answer"], pin["question"]


def test_pins_file_format(pins):
    assert pins["format"] == "repro-benchmark-pins"
    assert pins["version"] == 1
    assert set(pins["domains"]) == set(BENCH_DOMAINS)


if __name__ == "__main__":
    PINS_PATH.parent.mkdir(parents=True, exist_ok=True)
    PINS_PATH.write_text(
        json.dumps(build_pins(), indent=1) + "\n", encoding="utf-8"
    )
    print(f"wrote {PINS_PATH}")
