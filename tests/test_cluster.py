"""The cluster end to end: a real ``repro serve --procs N`` subprocess.

Every test here talks HTTP to a forked worker pool — routing,
synchronous replication, session affinity, crash handoff, degraded
mode and durable recovery are all exercised against the real boot path
(``build_cluster`` before the loop, ``start_router`` inside it), not a
mock.  Workers are killed with SIGKILL, never asked nicely.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="cluster mode needs os.fork()"
)

INSERT = "INSERT INTO port (id, name, country) VALUES ({id}, '{name}', 'x')"


class ClusterProc:
    """One ``repro serve`` subprocess and the HTTP verbs to poke it."""

    def __init__(self, *args: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        banner = self.proc.stdout.readline().strip()
        self.banner = banner
        self.url = banner.rsplit("listening on ", 1)[1]

    def post(self, path: str, payload: dict):
        data = json.dumps(payload).encode()
        request = urllib.request.Request(self.url + path, data=data, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read()), response.headers
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), error.headers

    def get(self, path: str):
        try:
            with urllib.request.urlopen(self.url + path, timeout=30) as response:
                return response.status, json.loads(response.read()), response.headers
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), error.headers

    def stats(self) -> dict:
        return self.get("/stats")[1]

    def worker_pids(self) -> dict[int, int]:
        return {
            worker["index"]: worker["pid"]
            for worker in self.stats()["cluster"]["workers"]
        }

    def kill_worker(self, index: int, wait: bool = True) -> None:
        """SIGKILL a worker.  Signal delivery and the router's EOF-driven
        death detection are both asynchronous, so by default block until
        the router has noticed — otherwise a following wait_healthy()
        can catch a stale 200 from the instant before the death lands.
        ``wait=False`` races the detection on purpose."""
        pid = self.worker_pids()[index]
        os.kill(pid, signal.SIGKILL)
        if not wait:
            return
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            worker = {
                w["index"]: w for w in self.stats()["cluster"]["workers"]
            }[index]
            if not worker["live"] or worker["pid"] != pid:
                return
            time.sleep(0.02)
        raise AssertionError(f"death of worker {index} was never noticed")

    def wait_healthy(self, timeout: float = 20.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.get("/healthz")[0] == 200:
                return
            time.sleep(0.1)
        raise AssertionError("pool never returned to full strength")

    def stop(self) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung server
            self.proc.kill()
            self.proc.communicate()
        return self.proc.returncode


@pytest.fixture(scope="module")
def cluster():
    """Three workers, two in-memory domains, clarifications forced on."""
    server = ClusterProc(
        "fleet", "--port", "0", "--procs", "3",
        "--domain", "geography", "--clarify-margin", "10.0",
    )
    yield server
    assert server.stop() == 0


class TestBasics:
    def test_banner_names_domains_and_procs(self, cluster):
        assert "domains: fleet, geography" in cluster.banner
        assert "procs: 3" in cluster.banner
        # Tools parse the URL off the end of the line: it must stay last.
        assert cluster.banner.endswith(cluster.url)

    def test_ask_round_robins_across_live_workers(self, cluster):
        for _ in range(6):
            code, wire, _ = cluster.post(
                "/ask", {"question": "how many ships are there"}
            )
            assert code == 200
            assert wire["status"] == "answered"

    def test_domain_routing_by_path_and_body(self, cluster):
        code, wire, _ = cluster.post(
            "/d/geography/ask", {"question": "which rivers are in the usa"}
        )
        assert code == 200
        code2, wire2, _ = cluster.post(
            "/ask",
            {"question": "which rivers are in the usa", "domain": "geography"},
        )
        assert code2 == 200
        assert wire2["status"] == wire["status"]

    def test_unknown_domain_404(self, cluster):
        code, wire, _ = cluster.post("/d/narnia/ask", {"question": "hello"})
        assert code == 404
        assert wire["error"]["code"] == "unknown_domain"

    def test_healthz_reports_every_worker(self, cluster):
        cluster.wait_healthy()
        code, wire, _ = cluster.get("/healthz")
        assert code == 200
        assert wire["status"] == "ok"
        assert [w["index"] for w in wire["workers"]] == [0, 1, 2]
        assert all(w["live"] for w in wire["workers"])

    def test_stats_shape(self, cluster):
        stats = cluster.stats()
        assert stats["cluster"]["procs"] == 3
        assert set(stats["cluster"]["domains"]) == {"fleet", "geography"}
        fleet = stats["cluster"]["domains"]["fleet"]
        assert {"service", "router", "write_count", "sessions",
                "durable"} <= set(fleet)
        assert "http" in stats
        for worker in stats["cluster"]["workers"]:
            assert {"index", "pid", "live", "restarts", "writer"} <= set(worker)


class TestWritePath:
    def test_read_your_writes_on_every_worker(self, cluster):
        cluster.wait_healthy()
        code, before, _ = cluster.post("/sql", {"sql": "SELECT COUNT(*) FROM port"})
        n = before["rows"][0][0]
        code, wire, _ = cluster.post(
            "/sql", {"sql": INSERT.format(id=900, name="rr")}
        )
        assert code == 200
        # Round-robin hits every worker: the replicated write must be
        # visible on all of them before the ack (no stale sibling).
        for _ in range(6):
            code, wire, _ = cluster.post(
                "/sql", {"sql": "SELECT COUNT(*) FROM port"}
            )
            assert wire["rows"][0][0] == n + 1

    def test_transaction_spans_requests_and_commits_everywhere(self, cluster):
        cluster.wait_healthy()
        n = cluster.post("/sql", {"sql": "SELECT COUNT(*) FROM port"})[1]["rows"][0][0]
        assert cluster.post("/sql", {"sql": "BEGIN"})[0] == 200
        assert cluster.post(
            "/sql", {"sql": INSERT.format(id=901, name="txn")}
        )[0] == 200
        assert cluster.post("/sql", {"sql": "COMMIT"})[0] == 200
        for _ in range(6):
            count = cluster.post(
                "/sql", {"sql": "SELECT COUNT(*) FROM port"}
            )[1]["rows"][0][0]
            assert count == n + 1

    def test_rollback_leaves_no_trace(self, cluster):
        cluster.wait_healthy()
        n = cluster.post("/sql", {"sql": "SELECT COUNT(*) FROM port"})[1]["rows"][0][0]
        assert cluster.post("/sql", {"sql": "BEGIN"})[0] == 200
        assert cluster.post(
            "/sql", {"sql": INSERT.format(id=902, name="gone")}
        )[0] == 200
        assert cluster.post("/sql", {"sql": "ROLLBACK"})[0] == 200
        for _ in range(6):
            count = cluster.post(
                "/sql", {"sql": "SELECT COUNT(*) FROM port"}
            )[1]["rows"][0][0]
            assert count == n

    def test_engine_error_maps_to_422(self, cluster):
        code, wire, _ = cluster.post("/sql", {"sql": "SELECT * FROM nope"})
        assert code == 422
        assert wire["error"]["code"] == "engine_error"


class TestFailure:
    def _session_owner(self, cluster, domain, sid):
        owners = cluster.stats()["cluster"]["domains"][domain]["session_owners"]
        return owners[sid]

    def test_reader_kill_mid_ask_retries_on_sibling(self, cluster):
        cluster.wait_healthy()
        sid = "kill-reader"
        code, wire, _ = cluster.post(
            "/ask", {"question": "how many ships are there", "session": sid}
        )
        assert code == 200
        owner = self._session_owner(cluster, "fleet", sid)
        # Kill the owner and immediately re-ask: the router dispatches to
        # the (still-listed) owner, sees WorkerDied, hands the session
        # off and retries on a sibling — the client just sees 200.
        cluster.kill_worker(owner, wait=False)
        code, wire, _ = cluster.post(
            "/ask", {"question": "how many fleets are there", "session": sid}
        )
        assert code == 200
        assert wire["status"] == "answered"
        new_owner = self._session_owner(cluster, "fleet", sid)
        assert new_owner != owner
        cluster.wait_healthy()

    def test_clarification_survives_owner_death(self, cluster):
        cluster.wait_healthy()
        code, wire, _ = cluster.post(
            "/ask", {"question": "ships from norfolk", "clarify": True}
        )
        assert code == 409 and wire["clarification_id"]
        clar_id = wire["clarification_id"]
        owners = cluster.stats()["cluster"]["domains"]["fleet"][
            "clarification_owners"
        ]
        owner = owners[clar_id]
        cluster.kill_worker(owner)
        time.sleep(0.3)
        code, resolved, _ = cluster.post(
            "/resolve", {"clarification_id": clar_id, "choice": 0}
        )
        assert code == 200
        assert resolved["status"] == "answered"
        cluster.wait_healthy()

    def test_writer_death_aborts_open_transaction(self, cluster):
        cluster.wait_healthy()
        n = cluster.post("/sql", {"sql": "SELECT COUNT(*) FROM port"})[1]["rows"][0][0]
        assert cluster.post("/sql", {"sql": "BEGIN"})[0] == 200
        assert cluster.post(
            "/sql", {"sql": INSERT.format(id=903, name="lost")}
        )[0] == 200
        # Race the COMMIT against recovery (wait=False): if it beats the
        # respawn it must answer 503, never silently land.
        cluster.kill_worker(0, wait=False)
        # COMMIT cannot land: the group never reached the WAL, so the
        # router answers 503 and the transaction evaporates everywhere.
        code, wire, headers = cluster.post("/sql", {"sql": "COMMIT"})
        assert code == 503
        assert wire["error"]["code"] == "cluster_degraded"
        assert "Retry-After" in headers
        cluster.wait_healthy()
        for _ in range(6):
            count = cluster.post(
                "/sql", {"sql": "SELECT COUNT(*) FROM port"}
            )[1]["rows"][0][0]
            assert count == n
        # And the pool accepts new work afterwards.
        assert cluster.post(
            "/sql", {"sql": INSERT.format(id=904, name="after")}
        )[0] == 200

    def test_respawned_worker_caught_up_on_in_memory_dml(self, cluster):
        cluster.wait_healthy()
        assert cluster.post(
            "/sql", {"sql": INSERT.format(id=905, name="pre-kill")}
        )[0] == 200
        n = cluster.post("/sql", {"sql": "SELECT COUNT(*) FROM port"})[1]["rows"][0][0]
        cluster.kill_worker(2)
        cluster.wait_healthy()
        restarts = {
            w["index"]: w["restarts"]
            for w in cluster.stats()["cluster"]["workers"]
        }
        assert restarts[2] >= 1
        # Every worker, including the fresh fork, sees the pre-kill DML.
        for _ in range(6):
            count = cluster.post(
                "/sql", {"sql": "SELECT COUNT(*) FROM port"}
            )[1]["rows"][0][0]
            assert count == n


class TestDegradedMode:
    def test_healthz_503_and_dml_paused_while_respawning(self):
        server = ClusterProc(
            "fleet", "--port", "0", "--procs", "2", "--respawn-delay", "2.0"
        )
        try:
            server.wait_healthy()
            server.kill_worker(1)
            deadline = time.monotonic() + 5
            saw_degraded = False
            while time.monotonic() < deadline:
                code, wire, headers = server.get("/healthz")
                if code == 503:
                    saw_degraded = True
                    assert wire["status"] == "degraded"
                    assert "Retry-After" in headers
                    break
                time.sleep(0.05)
            assert saw_degraded
            # Writes pause while the pool is short a worker...
            code, wire, headers = server.post(
                "/sql", {"sql": INSERT.format(id=906, name="paused")}
            )
            assert code == 503
            assert wire["error"]["code"] == "cluster_degraded"
            assert "Retry-After" in headers
            # ...but reads keep flowing on the survivor.
            code, wire, _ = server.post(
                "/ask", {"question": "how many ships are there"}
            )
            assert code == 200
            server.wait_healthy()
            code, wire, _ = server.post(
                "/sql", {"sql": INSERT.format(id=906, name="resumed")}
            )
            assert code == 200
        finally:
            assert server.stop() == 0


class TestDurableCluster:
    def test_acked_writes_survive_writer_kill_and_full_restart(self, tmp_path):
        data_dir = str(tmp_path / "fleet-data")
        server = ClusterProc(
            "fleet", "--port", "0", "--procs", "2", "--data-dir", data_dir
        )
        try:
            server.wait_healthy()
            for i in range(5):
                code, _, _ = server.post(
                    "/sql", {"sql": INSERT.format(id=910 + i, name=f"ack{i}")}
                )
                assert code == 200
            n = server.post(
                "/sql", {"sql": "SELECT COUNT(*) FROM port"}
            )[1]["rows"][0][0]
            # SIGKILL the writer: its WAL holds every acked statement.
            server.kill_worker(0)
            server.wait_healthy()
            for _ in range(4):
                count = server.post(
                    "/sql", {"sql": "SELECT COUNT(*) FROM port"}
                )[1]["rows"][0][0]
                assert count == n
            # Writes work after the writer respawn (fresh storage attach).
            assert server.post(
                "/sql", {"sql": INSERT.format(id=920, name="post")}
            )[0] == 200
            n += 1
        finally:
            assert server.stop() == 0
        # Cold restart from disk: the acked rows are all there.
        server = ClusterProc(
            "fleet", "--port", "0", "--procs", "2", "--data-dir", data_dir
        )
        try:
            server.wait_healthy()
            count = server.post(
                "/sql", {"sql": "SELECT COUNT(*) FROM port"}
            )[1]["rows"][0][0]
            assert count == n
        finally:
            assert server.stop() == 0

    def test_session_log_distributed_on_boot(self, tmp_path):
        data_dir = str(tmp_path / "fleet-data")
        server = ClusterProc(
            "fleet", "--port", "0", "--procs", "2", "--data-dir", data_dir
        )
        try:
            server.wait_healthy()
            for sid in ("alpha", "beta"):
                code, _, _ = server.post(
                    "/ask",
                    {"question": "how many ships are there", "session": sid},
                )
                assert code == 200
        finally:
            assert server.stop() == 0
        server = ClusterProc(
            "fleet", "--port", "0", "--procs", "2", "--data-dir", data_dir
        )
        try:
            server.wait_healthy()
            owners = server.stats()["cluster"]["domains"]["fleet"][
                "session_owners"
            ]
            assert {"alpha", "beta"} <= set(owners)
            # The sessions answer follow-ups from their restored state.
            code, wire, _ = server.post(
                "/ask", {"question": "how many fleets are there",
                         "session": "alpha"},
            )
            assert code == 200
        finally:
            assert server.stop() == 0


SHIP_INSERT = (
    "INSERT INTO ship (id, name, type_id, fleet_id, home_port_id, "
    "commander_id, displacement, length, speed, commissioned, crew) "
    "VALUES ({id}, 'sub-{id}', 1, 2, 6, 1, 1000, 100, 30, 2000, 100)"
)


class TestStandingSubscriptions:
    """GET /v1/subscribe against the cluster: the subscription is pinned
    to one reader, replicated DML triggers that worker's re-evaluation,
    and SIGKILLing the owner re-registers it on a sibling without
    breaking the stream."""

    def _post_sql_retry(self, cluster, sql: str) -> None:
        """Writes 503 while the pool is respawning; retry through it."""
        deadline = time.monotonic() + 20
        while True:
            code, _, _ = cluster.post("/v1/sql", {"sql": sql})
            if code == 200:
                return
            assert code == 503, f"unexpected {code}"
            assert time.monotonic() < deadline, "write never got through"
            time.sleep(0.2)

    def test_push_survives_owner_sigkill(self, cluster):
        import http.client

        cluster.wait_healthy()
        host = cluster.url.split("//", 1)[1]
        connection = http.client.HTTPConnection(host, timeout=60)
        connection.request(
            "GET",
            "/v1/subscribe?question=how%20many%20ships%20are%20there"
            "&heartbeat=60",
        )
        response = connection.getresponse()
        assert response.status == 200
        try:
            hello = json.loads(response.readline())
            assert hello["type"] == "subscribed"
            assert hello["tables"] == ["ship"]
            first = json.loads(response.readline())
            assert first["type"] == "answer"
            count = first["envelope"]["answer"]["rows"][0][0]

            owners = cluster.stats()["cluster"]["domains"]["fleet"][
                "subscription_owners"
            ]
            owner = owners[hello["subscription"]]

            # A replicated relevant write pushes within one commit.
            self._post_sql_retry(cluster, SHIP_INSERT.format(id=9501))
            frame = json.loads(response.readline())
            assert frame["type"] == "answer"
            assert frame["envelope"]["answer"]["rows"][0][0] == count + 1

            # Kill the owner: the router re-registers on a sibling and
            # the fresh registration pushes a current answer.
            cluster.kill_worker(owner)
            frame = json.loads(response.readline())
            assert frame["type"] == "answer"
            assert frame["envelope"]["answer"]["rows"][0][0] == count + 1
            cluster.wait_healthy()
            stats = cluster.stats()["cluster"]["domains"]["fleet"]
            assert stats["subscription_owners"][hello["subscription"]] != owner
            assert stats["router"]["subscription_handoffs"] >= 1

            # Writes keep pushing through the adopted registration.
            self._post_sql_retry(cluster, SHIP_INSERT.format(id=9502))
            frame = json.loads(response.readline())
            assert frame["type"] == "answer"
            assert frame["envelope"]["answer"]["rows"][0][0] == count + 2
        finally:
            response.close()
            connection.close()
