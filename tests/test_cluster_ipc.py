"""Cluster plumbing units: frames, domain specs, refunds, handoff slices.

Everything here runs without forking — the end-to-end pool lives in
``test_cluster.py``.
"""

from __future__ import annotations

import asyncio
import os
import socket
import struct
import threading

import pytest

from repro.cluster.ipc import (
    FrameError,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.cluster.registry import DomainSpec
from repro.cluster.router import (
    ClusterRouter,
    _records_for,
    _statement_chunks,
    _statement_word,
)
from repro.cluster.supervisor import ClusterSupervisor, WorkerDied
from repro.service.ratelimit import RateLimiter


class TestFrames:
    def _pair(self):
        left, right = socket.socketpair()
        return left, right

    def test_roundtrip(self):
        left, right = self._pair()
        try:
            payload = {"op": "ask", "question": "how many ships", "id": 7}
            send_frame(left, payload)
            assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_many_frames_in_order(self):
        left, right = self._pair()
        try:
            for i in range(50):
                send_frame(left, {"id": i})
            for i in range(50):
                assert recv_frame(right) == {"id": i}
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = self._pair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = self._pair()
        try:
            # A length prefix promising bytes that never arrive.
            left.sendall(struct.pack(">I", 100) + b'{"tru')
            left.close()
            with pytest.raises(FrameError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_frame_rejected_both_ways(self):
        left, right = self._pair()
        try:
            with pytest.raises(FrameError):
                send_frame(left, {"blob": "x" * (33 << 20)})
            # A hostile/corrupt length prefix is rejected before any
            # allocation of that size.
            left.sendall(struct.pack(">I", 1 << 30))
            with pytest.raises(FrameError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_payload_rejected(self):
        left, right = self._pair()
        try:
            blob = b"[1, 2, 3]"
            left.sendall(struct.pack(">I", len(blob)) + blob)
            with pytest.raises(FrameError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_asyncio_side_speaks_same_protocol(self):
        import asyncio

        left, right = socket.socketpair()

        def blocking_peer():
            request = recv_frame(right)
            send_frame(right, {"id": request["id"], "ok": True})
            right.close()

        thread = threading.Thread(target=blocking_peer)
        thread.start()

        async def parent():
            reader, writer = await asyncio.open_connection(sock=left)
            write_frame(writer, {"op": "ping", "id": 1})
            await writer.drain()
            frame = await read_frame(reader)
            eof = await read_frame(reader)
            writer.close()
            return frame, eof

        frame, eof = asyncio.run(parent())
        thread.join()
        assert frame == {"id": 1, "ok": True}
        assert eof is None  # clean EOF maps to None, not an exception


class TestDomainSpec:
    def test_bare_name(self):
        spec = DomainSpec.parse("fleet")
        assert spec == DomainSpec("fleet", None)
        assert not spec.durable
        assert spec.session_log_path is None

    def test_name_with_data_dir(self, tmp_path):
        spec = DomainSpec.parse(f"geography={tmp_path}")
        assert spec.name == "geography"
        assert spec.durable
        assert spec.session_log_path == str(tmp_path / "sessions.jsonl")

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError, match="unknown domain"):
            DomainSpec.parse("narnia")

    def test_empty_data_dir_rejected(self):
        with pytest.raises(ValueError, match="empty data directory"):
            DomainSpec.parse("fleet=  ")


class TestStatementWord:
    @pytest.mark.parametrize(
        ("sql", "word"),
        [
            ("SELECT * FROM ship", "select"),
            ("  explain select 1", "explain"),
            ("INSERT INTO port VALUES (1)", "insert"),
            ("BEGIN;", "begin"),
            ("", ""),
        ],
    )
    def test_head_word(self, sql, word):
        assert _statement_word(sql) == word


class TestRefund:
    def test_refund_restores_tokens(self):
        limiter = RateLimiter(0.001, burst=2)
        assert limiter.check("k") == 0.0
        assert limiter.check("k") == 0.0
        assert limiter.check("k") > 0  # bucket drained
        limiter.refund("k")
        assert limiter.check("k") == 0.0  # the refunded token

    def test_refund_never_exceeds_capacity(self):
        limiter = RateLimiter(0.001, burst=2)
        limiter.check("k")
        limiter.refund("k", tokens=50.0)
        # Capacity is 2: exactly two checks pass, not fifty.
        assert limiter.check("k") == 0.0
        assert limiter.check("k") == 0.0
        assert limiter.check("k") > 0

    def test_refund_unknown_key_is_noop(self):
        RateLimiter(1.0, burst=2).refund("never-charged")


class TestStatementChunks:
    def test_small_batch_is_one_chunk(self):
        assert list(_statement_chunks(["a", "b"])) == [["a", "b"]]

    def test_splits_on_budget_preserving_order(self):
        statements = [f"stmt-{i:02d}" for i in range(10)]
        chunks = list(_statement_chunks(statements, budget=30))
        assert len(chunks) > 1
        assert [s for chunk in chunks for s in chunk] == statements

    def test_oversized_single_statement_ships_alone(self):
        assert list(_statement_chunks(["y" * 100], budget=10)) == [["y" * 100]]

    def test_empty_batch_yields_nothing(self):
        assert list(_statement_chunks([])) == []


class _StubHandle:
    def __init__(self, index: int):
        self.index = index
        self.state = "live"
        self.pid = 1000 + index
        self.restarts = 0

    @property
    def live(self) -> bool:
        return self.state == "live"

    @property
    def is_writer(self) -> bool:
        return self.index == 0


class _StubSupervisor:
    """Just enough supervisor for the router's write path, no forking."""

    def __init__(self, respond, procs: int = 2):
        self.procs = procs
        self.respawn_delay_s = 0.0
        self.handles = [_StubHandle(i) for i in range(procs)]
        self.requests: list[tuple[int, dict]] = []
        self.evicted: list[int] = []
        self._respond = respond
        self.on_worker_death = None
        self.on_worker_ready = None

    def live_handles(self):
        return [handle for handle in self.handles if handle.live]

    @property
    def all_live(self) -> bool:
        return all(handle.live for handle in self.handles)

    async def request(self, handle, payload):
        self.requests.append((handle.index, payload))
        out = self._respond(handle, payload)
        if isinstance(out, BaseException):
            raise out
        return out

    def evict(self, handle) -> None:
        self.evicted.append(handle.index)

    async def sweep(self) -> None:
        pass


def _sql_ok(handle, payload):
    return {"ok": True, "columns": [], "rows": []}


class TestReplicationFailureContainment:
    """A replica that cannot apply an acked statement must degrade the
    pool — never wedge the transaction gate or poison the commit."""

    def _router(self, respond) -> tuple[_StubSupervisor, ClusterRouter]:
        supervisor = _StubSupervisor(respond)
        return supervisor, ClusterRouter(supervisor, [DomainSpec.parse("fleet")])

    def test_commit_releases_gate_when_replica_apply_fails(self):
        def respond(handle, payload):
            if payload["op"] == "apply":
                return {"ok": False, "error": "diverged"}
            return _sql_ok(handle, payload)

        async def scenario():
            supervisor, router = self._router(respond)
            await router.execute("fleet", "BEGIN")
            await router.execute("fleet", "INSERT INTO port VALUES (1)")
            result = await router.execute("fleet", "COMMIT")
            assert result == {"columns": [], "rows": []}
            state = router._domains["fleet"]
            # The writer committed: the stamp moved and the gate reopened
            # even though the replica failed to apply.
            assert state.write_count == 1
            assert not state.txn_lock.locked()
            assert state.counters["replication_errors"] == 1
            assert supervisor.evicted == [1]
            # The next transaction starts immediately (no deadlock).
            await asyncio.wait_for(router.execute("fleet", "BEGIN"), timeout=1)
            await router.execute("fleet", "ROLLBACK")

        asyncio.run(scenario())

    def test_commit_contains_replication_exception(self):
        def respond(handle, payload):
            if payload["op"] == "apply":
                return FrameError("oversized frame")
            return _sql_ok(handle, payload)

        async def scenario():
            supervisor, router = self._router(respond)
            await router.execute("fleet", "BEGIN")
            await router.execute("fleet", "INSERT INTO port VALUES (1)")
            await router.execute("fleet", "COMMIT")  # must not raise
            state = router._domains["fleet"]
            assert state.write_count == 1
            assert not state.txn_lock.locked()
            assert state.counters["replication_errors"] == 1
            assert supervisor.evicted == [1]

        asyncio.run(scenario())

    def test_autocommit_ack_stands_despite_replica_failure(self):
        def respond(handle, payload):
            if payload["op"] == "apply":
                return {"ok": False, "error": "diverged"}
            return _sql_ok(handle, payload)

        async def scenario():
            supervisor, router = self._router(respond)
            result = await router.execute(
                "fleet", "INSERT INTO port VALUES (1)"
            )
            assert result == {"columns": [], "rows": []}
            state = router._domains["fleet"]
            assert state.write_count == 1
            assert supervisor.evicted == [1]

        asyncio.run(scenario())

    def test_dead_replica_is_skipped_not_evicted(self):
        def respond(handle, payload):
            if payload["op"] == "apply":
                return WorkerDied(handle.index)
            return _sql_ok(handle, payload)

        async def scenario():
            supervisor, router = self._router(respond)
            await router.execute("fleet", "INSERT INTO port VALUES (1)")
            state = router._domains["fleet"]
            # Death mid-apply is the respawn path's job, not divergence.
            assert supervisor.evicted == []
            assert state.counters["replication_errors"] == 0
            assert state.write_count == 1

        asyncio.run(scenario())


class TestRequestWatchdog:
    def _wire(self, sup):
        """Attach a never-answering peer socket to worker 0's handle."""

        async def attach():
            handle = sup.handles[0]
            left, right = socket.socketpair()
            handle.reader, handle.writer = await asyncio.open_connection(
                sock=left
            )
            handle.state = "live"
            return handle, right

        return attach

    def test_timeout_evicts_the_wedged_worker(self):
        async def scenario():
            sup = ClusterSupervisor({}, {}, 1, request_timeout_s=0.05)
            handle, peer = await self._wire(sup)()
            evicted = []
            sup.evict = lambda h: evicted.append(h.index)
            with pytest.raises(WorkerDied):
                await sup.request(handle, {"op": "ping"})
            assert evicted == [0]
            assert handle.pending == {}
            handle.writer.close()
            peer.close()

        asyncio.run(scenario())

    def test_oversized_payload_fails_fast_without_leaking(self):
        async def scenario():
            sup = ClusterSupervisor({}, {}, 1, request_timeout_s=None)
            handle, peer = await self._wire(sup)()
            with pytest.raises(FrameError):
                await sup.request(handle, {"blob": "x" * (33 << 20)})
            assert handle.pending == {}
            handle.writer.close()
            peer.close()

        asyncio.run(scenario())

    def test_evict_never_signals_reaped_pids(self, monkeypatch):
        sup = ClusterSupervisor({}, {}, 1)
        handle = sup.handles[0]
        handle.state = "live"
        handle.pid = 999999
        calls = []
        monkeypatch.setattr(os, "kill", lambda *args: calls.append(args))
        sup.evict(handle)  # pid unknown to the children set: reaped
        assert calls == []
        sup._children.add(999999)
        sup.evict(handle)
        assert calls == [(999999, 9)]
    EVENTS = [
        {"op": "open", "sid": "a"},
        {"op": "open", "sid": "b"},
        {"op": "turn", "sid": "a", "question": "q1", "clarify": False,
         "choice": None},
        {"op": "park", "sid": "a", "question": "q2", "id": "clar-a",
         "choices": []},
        {"op": "park", "sid": None, "question": "q3", "id": "clar-loose",
         "choices": []},
        {"op": "resolve", "id": "clar-a", "choice": 0},
        {"op": "resolve", "id": "clar-loose", "choice": 1},
        {"op": "turn", "sid": "b", "question": "q4", "clarify": False,
         "choice": None},
    ]

    def test_selects_only_the_moved_sessions(self):
        records = _records_for(self.EVENTS, {"a"}, set())
        ops = [(r["op"], r.get("sid"), r.get("id")) for r in records]
        assert ops == [
            ("open", "a", None),
            ("turn", "a", None),
            ("park", "a", "clar-a"),
            ("resolve", None, "clar-a"),  # follows its park, no sid needed
        ]

    def test_loose_clarification_moves_with_its_resolve(self):
        records = _records_for(self.EVENTS, set(), {"clar-loose"})
        ops = [(r["op"], r.get("id")) for r in records]
        assert ops == [("park", "clar-loose"), ("resolve", "clar-loose")]

    def test_other_sessions_resolves_stay_behind(self):
        records = _records_for(self.EVENTS, {"b"}, set())
        ops = [(r["op"], r.get("sid")) for r in records]
        assert ops == [("open", "b"), ("turn", "b")]
