"""Cluster plumbing units: frames, domain specs, refunds, handoff slices.

Everything here runs without forking — the end-to-end pool lives in
``test_cluster.py``.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.cluster.ipc import (
    FrameError,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.cluster.registry import DomainSpec
from repro.cluster.router import _records_for, _statement_word
from repro.service.ratelimit import RateLimiter


class TestFrames:
    def _pair(self):
        left, right = socket.socketpair()
        return left, right

    def test_roundtrip(self):
        left, right = self._pair()
        try:
            payload = {"op": "ask", "question": "how many ships", "id": 7}
            send_frame(left, payload)
            assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_many_frames_in_order(self):
        left, right = self._pair()
        try:
            for i in range(50):
                send_frame(left, {"id": i})
            for i in range(50):
                assert recv_frame(right) == {"id": i}
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = self._pair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = self._pair()
        try:
            # A length prefix promising bytes that never arrive.
            left.sendall(struct.pack(">I", 100) + b'{"tru')
            left.close()
            with pytest.raises(FrameError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_frame_rejected_both_ways(self):
        left, right = self._pair()
        try:
            with pytest.raises(FrameError):
                send_frame(left, {"blob": "x" * (33 << 20)})
            # A hostile/corrupt length prefix is rejected before any
            # allocation of that size.
            left.sendall(struct.pack(">I", 1 << 30))
            with pytest.raises(FrameError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_payload_rejected(self):
        left, right = self._pair()
        try:
            blob = b"[1, 2, 3]"
            left.sendall(struct.pack(">I", len(blob)) + blob)
            with pytest.raises(FrameError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_asyncio_side_speaks_same_protocol(self):
        import asyncio

        left, right = socket.socketpair()

        def blocking_peer():
            request = recv_frame(right)
            send_frame(right, {"id": request["id"], "ok": True})
            right.close()

        thread = threading.Thread(target=blocking_peer)
        thread.start()

        async def parent():
            reader, writer = await asyncio.open_connection(sock=left)
            write_frame(writer, {"op": "ping", "id": 1})
            await writer.drain()
            frame = await read_frame(reader)
            eof = await read_frame(reader)
            writer.close()
            return frame, eof

        frame, eof = asyncio.run(parent())
        thread.join()
        assert frame == {"id": 1, "ok": True}
        assert eof is None  # clean EOF maps to None, not an exception


class TestDomainSpec:
    def test_bare_name(self):
        spec = DomainSpec.parse("fleet")
        assert spec == DomainSpec("fleet", None)
        assert not spec.durable
        assert spec.session_log_path is None

    def test_name_with_data_dir(self, tmp_path):
        spec = DomainSpec.parse(f"geography={tmp_path}")
        assert spec.name == "geography"
        assert spec.durable
        assert spec.session_log_path == str(tmp_path / "sessions.jsonl")

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError, match="unknown domain"):
            DomainSpec.parse("narnia")

    def test_empty_data_dir_rejected(self):
        with pytest.raises(ValueError, match="empty data directory"):
            DomainSpec.parse("fleet=  ")


class TestStatementWord:
    @pytest.mark.parametrize(
        ("sql", "word"),
        [
            ("SELECT * FROM ship", "select"),
            ("  explain select 1", "explain"),
            ("INSERT INTO port VALUES (1)", "insert"),
            ("BEGIN;", "begin"),
            ("", ""),
        ],
    )
    def test_head_word(self, sql, word):
        assert _statement_word(sql) == word


class TestRefund:
    def test_refund_restores_tokens(self):
        limiter = RateLimiter(0.001, burst=2)
        assert limiter.check("k") == 0.0
        assert limiter.check("k") == 0.0
        assert limiter.check("k") > 0  # bucket drained
        limiter.refund("k")
        assert limiter.check("k") == 0.0  # the refunded token

    def test_refund_never_exceeds_capacity(self):
        limiter = RateLimiter(0.001, burst=2)
        limiter.check("k")
        limiter.refund("k", tokens=50.0)
        # Capacity is 2: exactly two checks pass, not fifty.
        assert limiter.check("k") == 0.0
        assert limiter.check("k") == 0.0
        assert limiter.check("k") > 0

    def test_refund_unknown_key_is_noop(self):
        RateLimiter(1.0, burst=2).refund("never-charged")


class TestRecordsFor:
    EVENTS = [
        {"op": "open", "sid": "a"},
        {"op": "open", "sid": "b"},
        {"op": "turn", "sid": "a", "question": "q1", "clarify": False,
         "choice": None},
        {"op": "park", "sid": "a", "question": "q2", "id": "clar-a",
         "choices": []},
        {"op": "park", "sid": None, "question": "q3", "id": "clar-loose",
         "choices": []},
        {"op": "resolve", "id": "clar-a", "choice": 0},
        {"op": "resolve", "id": "clar-loose", "choice": 1},
        {"op": "turn", "sid": "b", "question": "q4", "clarify": False,
         "choice": None},
    ]

    def test_selects_only_the_moved_sessions(self):
        records = _records_for(self.EVENTS, {"a"}, set())
        ops = [(r["op"], r.get("sid"), r.get("id")) for r in records]
        assert ops == [
            ("open", "a", None),
            ("turn", "a", None),
            ("park", "a", "clar-a"),
            ("resolve", None, "clar-a"),  # follows its park, no sid needed
        ]

    def test_loose_clarification_moves_with_its_resolve(self):
        records = _records_for(self.EVENTS, set(), {"clar-loose"})
        ops = [(r["op"], r.get("id")) for r in records]
        assert ops == [("park", "clar-loose"), ("resolve", "clar-loose")]

    def test_other_sessions_resolves_stay_behind(self):
        records = _records_for(self.EVENTS, {"b"}, set())
        ops = [(r["op"], r.get("sid")) for r in records]
        assert ops == [("open", "b"), ("turn", "b")]
