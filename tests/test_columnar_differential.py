"""Row-vs-columnar differential harness.

The columnar batch executor (`repro.sqlengine.columnar`) must be
*observably identical* to the row interpreter: the same rows, in the same
order, under the same column names, from the same optimizer plan — and
when a query errors, the same error.  This suite proves it two ways:

* **corpus sweep** — every SELECT in the five domain corpora (t1–t5 gold
  SQL, wild questions and dialogue turns) runs through a row engine and a
  columnar engine over one shared database, comparing results and the
  EXPLAIN plan (modulo the ``columnar=true`` annotations, which are the
  only rendering the two modes may legitimately differ in);
* **hypothesis sweep** — generated SELECTs over a NULL-heavy two-table
  schema: filters in all compiled shapes (comparisons, BETWEEN, IN,
  LIKE, IS NULL, AND/OR/NOT), arithmetic that can raise, inner/left
  joins, aggregates and grouping, ORDER BY/LIMIT, and subqueries that
  force the row-path fallback.  Hypothesis shrinks any mismatch to a
  minimal failing query.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import ALL_DOMAINS, load_bundle
from repro.sqlengine import Database, Engine


def _strip_columnar(plan: str) -> str:
    """EXPLAIN text without the columnar annotations.

    ``columnar=true`` is the *only* EXPLAIN difference the two modes are
    allowed to have; everything else (join order, build side, estimates,
    index hints, residual counts) must match exactly.
    """
    return plan.replace(" [columnar=true]", "").replace(" columnar=true", "")


def _outcome(engine: Engine, sql: str):
    """Result triple or error pair, for both-raise-or-both-succeed checks."""
    try:
        result = engine.execute(sql)
    except Exception as exc:  # noqa: BLE001 - parity covers every error
        return ("error", type(exc).__name__, str(exc))
    return ("ok", tuple(result.columns), tuple(result.rows))


def assert_identical(row_engine: Engine, col_engine: Engine, sql: str) -> None:
    row_out = _outcome(row_engine, sql)
    col_out = _outcome(col_engine, sql)
    assert row_out == col_out, (
        f"row/columnar divergence for {sql!r}:\n row: {row_out}\n col: {col_out}"
    )
    if row_out[0] == "ok":
        row_plan = row_engine.explain(sql)
        col_plan = col_engine.explain(sql)
        assert row_plan == _strip_columnar(col_plan), (
            f"plan divergence for {sql!r}:\n row: {row_plan}\n col: {col_plan}"
        )


# ==========================================================================
# Corpus sweep: every gold SELECT of every domain, both engines
# ==========================================================================


def _bundle_selects(bundle) -> list[str]:
    out: list[str] = []
    for example in bundle.corpus + bundle.wild:
        out.append(example.gold_sql)
    for dialogue in bundle.dialogues:
        out.extend(turn.gold_sql for turn in dialogue)
    return [sql for sql in out if sql.lstrip().upper().startswith("SELECT")]


@pytest.mark.parametrize("domain", ALL_DOMAINS)
def test_corpus_gold_sql_identical_across_paths(domain):
    bundle = load_bundle(domain)
    row_engine = Engine(bundle.database, use_columnar=False)
    col_engine = Engine(bundle.database, use_columnar=True)
    selects = _bundle_selects(bundle)
    assert selects, f"domain {domain} contributed no SELECTs"
    for sql in selects:
        assert_identical(row_engine, col_engine, sql)


def test_corpus_sweep_is_substantial():
    total = sum(len(_bundle_selects(load_bundle(d))) for d in ALL_DOMAINS)
    assert total >= 200, f"only {total} corpus SELECTs — corpora shrank?"


# ==========================================================================
# Hypothesis sweep: generated queries over a NULL-heavy schema
# ==========================================================================


@pytest.fixture(scope="module")
def engines():
    db = Database()
    setup = Engine(db)
    setup.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, a INT, b FLOAT, s TEXT, flag BOOL)"
    )
    setup.execute(
        "CREATE TABLE u (id INT PRIMARY KEY, t_id INT REFERENCES t(id), "
        "v TEXT, n INT)"
    )
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    # NULL-heavy on purpose: every nullable column is NULL for ~1 in 3
    # rows, so three-valued logic differences cannot hide.
    for i in range(60):
        a = "NULL" if i % 3 == 0 else str((i * 7) % 20 - 5)
        b = "NULL" if i % 5 == 1 else f"{(i % 11) * 1.5 - 3}"
        s = "NULL" if i % 4 == 2 else f"'{words[i % len(words)]} {i % 9}'"
        flag = "NULL" if i % 7 == 3 else ("TRUE" if i % 2 else "FALSE")
        setup.execute(f"INSERT INTO t VALUES ({i}, {a}, {b}, {s}, {flag})")
    for i in range(80):
        t_id = "NULL" if i % 6 == 4 else str((i * 3) % 60)
        v = "NULL" if i % 3 == 1 else f"'{words[(i * 2) % len(words)]}'"
        n = "NULL" if i % 4 == 0 else str(i % 12 - 2)
        setup.execute(f"INSERT INTO u VALUES ({i}, {t_id}, {v}, {n})")
    return Engine(db, use_columnar=False), Engine(db, use_columnar=True)


_NUM_COLS = ["t.id", "t.a", "t.b", "u.n"]
_TEXT_COLS = ["t.s", "u.v"]
_WORDS = ["alpha", "beta", "gamma", "delta", "zeta", "omega"]

_num_literal = st.one_of(
    st.integers(-6, 20),
    st.sampled_from([0.0, 1.5, -3.0, 7.5]),
)
_text_literal = st.sampled_from(
    [f"'{w}'" for w in _WORDS] + ["'alpha 3'", "'%'", "''"]
)


@st.composite
def _comparison(draw, cols):
    column = draw(st.sampled_from(cols))
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    if column in _TEXT_COLS:
        rhs = draw(_text_literal)
    else:
        rhs = str(draw(_num_literal))
    if draw(st.booleans()):
        return f"{rhs} {op} {column}"  # literal-OP-column flip coverage
    return f"{column} {op} {rhs}"


@st.composite
def _atom(draw, cols):
    kind = draw(
        st.sampled_from(
            ["cmp", "cmp", "cmp", "null", "between", "inlist", "like", "arith"]
        )
    )
    if kind == "cmp":
        return draw(_comparison(cols))
    column = draw(st.sampled_from(cols))
    if kind == "null":
        negated = draw(st.booleans())
        return f"{column} IS {'NOT ' if negated else ''}NULL"
    if kind == "between":
        low = draw(st.integers(-6, 10))
        span = draw(st.integers(0, 8))
        target = draw(st.sampled_from([c for c in cols if c not in _TEXT_COLS]))
        negated = draw(st.booleans())
        return f"{target} {'NOT ' if negated else ''}BETWEEN {low} AND {low + span}"
    if kind == "inlist":
        if column in _TEXT_COLS:
            items = draw(st.lists(_text_literal, min_size=1, max_size=4))
        else:
            items = [str(v) for v in draw(st.lists(_num_literal, min_size=1, max_size=4))]
            if draw(st.booleans()):
                items.append("NULL")  # three-valued IN semantics
        negated = draw(st.booleans())
        return f"{column} {'NOT ' if negated else ''}IN ({', '.join(items)})"
    if kind == "like":
        target = draw(st.sampled_from([c for c in cols if c in _TEXT_COLS] or cols))
        pattern = draw(st.sampled_from(["'al%'", "'%a'", "'%et%'", "'alpha _'", "'%'"]))
        negated = draw(st.booleans())
        return f"{target} {'NOT ' if negated else ''}LIKE {pattern}"
    # arith: expressions that can divide by zero — error parity coverage
    target = draw(st.sampled_from([c for c in cols if c not in _TEXT_COLS]))
    op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
    rhs = draw(st.integers(0, 4))  # 0 divisor included deliberately
    return f"({target} {op} {rhs}) > {draw(st.integers(-4, 12))}"


@st.composite
def _predicate(draw, cols, max_depth=2):
    if max_depth == 0 or draw(st.integers(0, 2)) == 0:
        atom = draw(_atom(cols))
        if draw(st.integers(0, 5)) == 0:
            return f"NOT ({atom})"
        return atom
    left = draw(_predicate(cols, max_depth=max_depth - 1))
    right = draw(_predicate(cols, max_depth=max_depth - 1))
    connective = draw(st.sampled_from(["AND", "OR"]))
    return f"({left} {connective} {right})"


_differential_settings = settings(
    max_examples=100,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@_differential_settings
@given(data=st.data())
def test_hypothesis_single_table(engines, data):
    cols = ["t.id", "t.a", "t.b", "t.s", "t.flag"]
    where = data.draw(_predicate(cols))
    items = data.draw(
        st.sampled_from(
            ["*", "t.id, t.a", "t.s, t.b", "t.id, t.a + t.b", "t.id, upper(t.s)"]
        )
    )
    distinct = "DISTINCT " if data.draw(st.booleans()) else ""
    order = data.draw(st.sampled_from(["", " ORDER BY t.id", " ORDER BY t.a DESC, t.id"]))
    limit = data.draw(st.sampled_from(["", " LIMIT 7"]))
    sql = f"SELECT {distinct}{items} FROM t WHERE {where}{order}{limit}"
    row_engine, col_engine = engines
    assert_identical(row_engine, col_engine, sql)


@_differential_settings
@given(data=st.data())
def test_hypothesis_joins(engines, data):
    cols = ["t.id", "t.a", "t.s", "u.v", "u.n"]
    kind = data.draw(st.sampled_from(["JOIN", "LEFT JOIN"]))
    extra = data.draw(st.sampled_from(["", " AND u.n > 2", " AND t.a < u.n"]))
    where = data.draw(_predicate(cols, max_depth=1))
    items = data.draw(
        st.sampled_from(["t.id, u.id", "t.s, u.v", "t.id, u.n, t.a", "*"])
    )
    order = data.draw(st.sampled_from(["", " ORDER BY t.id, u.id"]))
    sql = (
        f"SELECT {items} FROM t {kind} u ON u.t_id = t.id{extra} "
        f"WHERE {where}{order}"
    )
    row_engine, col_engine = engines
    assert_identical(row_engine, col_engine, sql)


@_differential_settings
@given(data=st.data())
def test_hypothesis_aggregates_and_subqueries(engines, data):
    shape = data.draw(st.sampled_from(["agg", "group", "subquery", "scalar_sub"]))
    where = data.draw(_predicate(["t.id", "t.a", "t.b", "t.s"], max_depth=1))
    row_engine, col_engine = engines
    if shape == "agg":
        agg = data.draw(
            st.sampled_from(
                ["COUNT(*)", "COUNT(t.a)", "SUM(t.a)", "AVG(t.b)", "MIN(t.s)", "MAX(t.a)"]
            )
        )
        sql = f"SELECT {agg} FROM t WHERE {where}"
    elif shape == "group":
        having = data.draw(st.sampled_from(["", " HAVING COUNT(*) > 2"]))
        sql = (
            f"SELECT t.flag, COUNT(*), SUM(t.a) FROM t WHERE {where} "
            f"GROUP BY t.flag{having} ORDER BY 2 DESC, 1"
        )
    elif shape == "subquery":
        negated = "NOT " if data.draw(st.booleans()) else ""
        sql = (
            f"SELECT t.id FROM t WHERE t.id {negated}IN "
            f"(SELECT u.t_id FROM u WHERE u.n > 3) AND {where} ORDER BY t.id"
        )
    else:
        sql = (
            f"SELECT t.id, (SELECT MAX(u.n) FROM u WHERE u.t_id = t.id) "
            f"FROM t WHERE {where} ORDER BY t.id LIMIT 10"
        )
    assert_identical(row_engine, col_engine, sql)


# ==========================================================================
# Targeted parity pins (shapes the sweeps could sample past)
# ==========================================================================


PINNED = [
    # Kleene short-circuit: the row evaluator skips the erroring right
    # operand when the left is False, and errors when it is not.
    "SELECT t.id FROM t WHERE t.a > 100 AND t.id / 0 > 1",
    "SELECT t.id FROM t WHERE t.id >= 0 OR t.id / 0 > 1",
    # Type mismatches surface as NULL comparisons, not errors.
    "SELECT t.id FROM t WHERE t.s > 5",
    "SELECT t.id FROM t WHERE t.flag = 'yes'",
    # LIKE on a non-text operand must raise in both modes.
    "SELECT t.id FROM t WHERE t.a LIKE 'a%'",
    # Numeric join keys: 1 = 1.0 bucketing parity.
    "SELECT t.id, u.id FROM t JOIN u ON u.n = t.b ORDER BY t.id, u.id",
    # DISTINCT + ORDER BY ordinal + LIMIT over the columnar projection.
    "SELECT DISTINCT t.a FROM t WHERE t.a IS NOT NULL ORDER BY 1 LIMIT 5",
    # Unqualified columns (single-table scope) compile; ambiguity falls back.
    "SELECT id, a FROM t WHERE a BETWEEN 0 AND 9 ORDER BY id",
    # Scalar functions in filters and projections.
    "SELECT t.id, length(t.s) FROM t WHERE lower(t.s) LIKE 'a%' ORDER BY t.id",
    # Empty results keep their column headers.
    "SELECT t.id, t.s FROM t WHERE t.a > 999",
]


@pytest.mark.parametrize("sql", PINNED)
def test_pinned_parity(engines, sql):
    row_engine, col_engine = engines
    assert_identical(row_engine, col_engine, sql)
