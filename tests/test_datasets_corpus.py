"""Dataset integrity + corpus validity tests.

The corpora embed gold SQL; every gold query must execute and the
databases must be deterministic and referentially intact.
"""

import pytest

from repro.datasets import company, fleet, geography, load_bundle
from repro.errors import ReproError
from repro.sqlengine import Engine


@pytest.fixture(scope="module", params=["fleet", "company", "geography", "saas", "events"])
def bundle(request):
    return load_bundle(request.param)


class TestDatabases:
    def test_deterministic_build(self):
        a = fleet.build_database(seed=7)
        b = fleet.build_database(seed=7)
        assert list(a.table("ship").rows()) == list(b.table("ship").rows())

    def test_seed_changes_data(self):
        a = fleet.build_database(seed=7)
        b = fleet.build_database(seed=8)
        assert list(a.table("ship").rows()) != list(b.table("ship").rows())

    def test_referential_integrity(self, bundle):
        assert bundle.database.check_integrity() == []

    def test_row_counts(self):
        db = fleet.build_database()
        assert len(db.table("ship")) == 60
        assert len(db.table("fleet")) == 4
        db2 = company.build_database()
        assert len(db2.table("employee")) == 40
        assert len(db2.table("sale")) == 200
        db3 = geography.build_database()
        assert len(db3.table("country")) == 18

    def test_scalable_fleet(self):
        db = fleet.build_database(ships=200)
        assert len(db.table("ship")) == 200
        assert db.check_integrity() == []

    def test_ship_officer_name_overlap_exists(self):
        """The deliberate ambiguity must exist for T5 to be meaningful."""
        db = fleet.build_database()
        ships = set(db.table("ship").column_values("name"))
        officers = set(db.table("officer").column_values("name"))
        assert ships & officers

    def test_displacement_ranges_by_type(self):
        db = fleet.build_database()
        engine = Engine(db)
        carrier_min = engine.execute(
            "SELECT MIN(ship.displacement) FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'"
        ).scalar()
        frigate_max = engine.execute(
            "SELECT MAX(ship.displacement) FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'frigate'"
        ).scalar()
        assert carrier_min > frigate_max


class TestCorpora:
    def test_gold_sql_executes(self, bundle):
        engine = Engine(bundle.database)
        for example in bundle.corpus:
            result = engine.execute(example.gold_sql)
            assert result.columns, example.question

    def test_wild_gold_sql_executes(self, bundle):
        engine = Engine(bundle.database)
        for example in bundle.wild:
            engine.execute(example.gold_sql)

    def test_dialogue_gold_sql_executes(self, bundle):
        engine = Engine(bundle.database)
        for script in bundle.dialogues:
            for turn in script:
                engine.execute(turn.gold_sql)

    def test_corpus_size(self, bundle):
        assert len(bundle.corpus) >= 60

    def test_every_example_tagged(self, bundle):
        for example in bundle.corpus:
            assert example.features, example.question
            assert example.domain == bundle.name

    def test_feature_coverage(self, bundle):
        tags = set()
        for example in bundle.corpus:
            tags |= example.features
        assert {"select", "count", "agg", "super", "compare",
                "negation", "member", "nested", "group", "order"} <= tags

    def test_no_duplicate_questions(self, bundle):
        questions = [e.question for e in bundle.corpus]
        assert len(questions) == len(set(questions))

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            load_bundle("atlantis")


class TestBaselinesOnCorpora:
    def test_keyword_baseline_answers_simple_lookups(self, bundle):
        from repro.baselines import KeywordBaseline
        from repro.evalkit import answers_match

        baseline = KeywordBaseline(bundle.database, bundle.model)
        engine = Engine(bundle.database)
        simple = [e for e in bundle.corpus if e.features == frozenset({"select"})]
        assert simple
        wins = 0
        for example in simple:
            try:
                produced = baseline.answer(example.question)
            except ReproError:
                continue
            if answers_match(produced, engine.execute(example.gold_sql)):
                wins += 1
        assert wins >= len(simple) // 2  # handles at least half of plain lists

    def test_keyword_baseline_fails_on_comparisons(self, bundle):
        from repro.baselines import KeywordBaseline
        from repro.evalkit import answers_match

        baseline = KeywordBaseline(bundle.database, bundle.model)
        engine = Engine(bundle.database)
        hard = [e for e in bundle.corpus if "compare" in e.features]
        correct = 0
        for example in hard:
            try:
                produced = baseline.answer(example.question)
            except ReproError:
                continue
            if answers_match(produced, engine.execute(example.gold_sql)):
                correct += 1
        assert correct <= len(hard) // 4  # structurally incapable

    def test_template_baseline_count_pattern(self):
        from repro.baselines import TemplateBaseline

        bundle = load_bundle("fleet")
        baseline = TemplateBaseline(bundle.database, bundle.model)
        assert baseline.answer("how many ships are there").scalar() == 60

    def test_template_baseline_rejects_off_pattern(self):
        from repro.baselines import TemplateBaseline
        from repro.errors import ParseFailure

        bundle = load_bundle("fleet")
        baseline = TemplateBaseline(bundle.database, bundle.model)
        with pytest.raises(ParseFailure):
            baseline.answer("ships heavier than the enterprise")
