"""The docs check: intra-repo links resolve, documented examples run.

Two guards keep the documentation suite honest:

* every relative markdown link in every ``*.md`` file must point at a
  file (or directory) that actually exists in the repo;
* the ``EXPLAIN`` reference (docs/explain.md) and the README quickstart
  embed real interpreter sessions, executed here as doctests so their
  outputs cannot drift from the engine.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories never scanned for markdown (VCS internals, caches, venvs).
_SKIPPED_DIRS = {".git", ".hypothesis", "__pycache__", ".pytest_cache", "results"}

#: ``[text](target)`` inline links; images share the same target syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files() -> list[Path]:
    files = [
        path
        for path in REPO_ROOT.rglob("*.md")
        if not any(part in _SKIPPED_DIRS or part.startswith(".") for part in path.parts[:-1])
    ]
    assert files, "no markdown files found — is the repo root wrong?"
    return files


def _intra_repo_links(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks may contain bracketed text that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    out = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        out.append(target)
    return out


def test_intra_repo_markdown_links_resolve():
    broken: list[str] = []
    for path in _markdown_files():
        for target in _intra_repo_links(path):
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(REPO_ROOT)} -> {target}")
    assert not broken, "broken intra-repo links:\n" + "\n".join(broken)


#: The documentation registry: every page under docs/ must appear here
#: (and be linked from the README) or the orphan guard fails the build.
REGISTERED_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/explain.md",
    "docs/api.md",
    "docs/http.md",
    "docs/streaming.md",
    "docs/concurrency.md",
    "docs/cluster.md",
    "docs/storage.md",
    "docs/benchmarks.md",
    "docs/evaluation.md",
)


def test_required_docs_exist():
    for relative in REGISTERED_DOCS:
        assert (REPO_ROOT / relative).is_file(), f"missing {relative}"


def test_no_orphaned_doc_pages():
    """Every docs/*.md page is registered here AND reachable from the
    README — a page nobody links to (or that CI never checks) is a page
    that silently rots."""
    readme_targets = {
        target.split("#", 1)[0]
        for target in _intra_repo_links(REPO_ROOT / "README.md")
    }
    problems: list[str] = []
    for page in sorted((REPO_ROOT / "docs").glob("*.md")):
        relative = page.relative_to(REPO_ROOT).as_posix()
        if relative not in REGISTERED_DOCS:
            problems.append(f"{relative} is not registered in tests/test_docs.py")
        if relative not in readme_targets:
            problems.append(f"{relative} is not linked from README.md")
    assert not problems, "orphaned doc pages:\n" + "\n".join(problems)


@pytest.mark.parametrize(
    "doc",
    [
        "docs/explain.md",
        "README.md",
        "docs/api.md",
        "docs/http.md",
        "docs/streaming.md",
        "docs/concurrency.md",
        "docs/cluster.md",
        "docs/storage.md",
        "docs/evaluation.md",
    ],
)
def test_doc_examples_run_as_doctests(doc):
    """Worked examples in the docs are executed against the real engine."""
    results = doctest.testfile(
        str(REPO_ROOT / doc),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, f"{doc} has no doctest examples"
    assert results.failed == 0, f"{doc}: {results.failed} doctest failure(s)"
