"""Property-based tests (hypothesis) for the typo-injection corpus.

The corruption module feeds the spelling-robustness rows of the
evaluation matrix, so its invariants are load-bearing: a zero rate must
be the identity, corruption must never add or remove words, and a fixed
seed must reproduce a byte-identical corrupted corpus.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.base import rng_for
from repro.evalkit.corruption import corrupt_question, corrupt_word

# Question-like text: words of letters and digits joined by single
# spaces (the tokenizer's view of a question after normalization).
words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=12,
)
questions = st.lists(words, min_size=1, max_size=12).map(" ".join)

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(question=questions, seed=seeds)
def test_rate_zero_is_identity(question, seed):
    rng = random.Random(seed)
    assert corrupt_question(question, 0.0, rng) == question


@given(question=questions, rate=rates, seed=seeds)
def test_word_count_preserved(question, rate, seed):
    corrupted = corrupt_question(question, rate, random.Random(seed))
    assert len(corrupted.split()) == len(question.split())


@given(question=questions, rate=rates, seed=seeds)
def test_short_and_numeric_words_untouched(question, rate, seed):
    corrupted = corrupt_question(question, rate, random.Random(seed))
    for original, result in zip(question.split(), corrupted.split()):
        if len(original) < 4 or not original.isalpha():
            assert result == original


@given(question=questions, rate=rates, seed=seeds)
def test_same_seed_reproduces_byte_identical(question, rate, seed):
    first = corrupt_question(question, rate, random.Random(seed))
    second = corrupt_question(question, rate, random.Random(seed))
    assert first == second


@given(corpus=st.lists(questions, min_size=1, max_size=8), seed=seeds)
@settings(max_examples=50)
def test_corpus_reproduction_through_shared_rng(corpus, seed):
    """One RNG threaded through a whole corpus reproduces it exactly.

    This is the runner's actual usage: ``cell_questions`` seeds a single
    ``rng_for`` stream and corrupts every question of the cell from it,
    so reproducibility must survive sequential draws, not just
    single-question calls.
    """

    def corrupt_all():
        rng = rng_for(seed, "corpus")
        return [corrupt_question(q, 0.5, rng) for q in corpus]

    assert corrupt_all() == corrupt_all()


@given(word=words, seed=seeds)
def test_corrupt_word_leaves_short_words_alone(word, seed):
    if len(word) < 4 or not word.isalpha():
        assert corrupt_word(word, random.Random(seed)) == word


@given(seed=seeds)
def test_corrupt_word_single_edit_bounds(seed):
    """One edit changes length by at most one character."""
    word = "displacement"
    corrupted = corrupt_word(word, random.Random(seed))
    assert abs(len(corrupted) - len(word)) <= 1
    # The first character is never edited (a swap can move the last one).
    assert corrupted[0] == word[0]
    assert set(corrupted) <= set(word) | set("qwertyuiopasdfghjklzxcvbnm")


@given(rate=rates, seed=seeds)
def test_full_rate_still_preserves_structure(rate, seed):
    question = "which ships have a displacement over 1000 tons"
    corrupted = corrupt_question(question, 1.0, random.Random(seed))
    assert len(corrupted.split()) == len(question.split())
    # Numbers and short words survive even at rate 1.0.
    assert "1000" in corrupted.split()
    assert "a" in corrupted.split()
