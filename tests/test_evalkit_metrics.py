"""Edge cases of evalkit metrics: matching, staging, response scoring.

Covers the comparison semantics the evaluation matrix leans on — empty
result sets, NULL-bearing rows, float rounding — and the full outcome
space of ``score_response``, including the clarification path where an
AMBIGUOUS response's offered SQL is executed against a live engine.
"""

import dataclasses

import pytest

from repro.evalkit.metrics import (
    ResponseScore,
    answer_set_matches,
    answers_match,
    failure_stage,
    score_response,
)
from repro.service.response import (
    EMPTY_QUESTION,
    EXECUTION_ERROR,
    INTERPRETATION_ERROR,
    MISSING_CONTEXT,
    PARSE_FAILURE,
    Choice,
    Diagnostic,
    Response,
    Status,
)
from repro.sqlengine.result import ResultSet


def rs(columns, rows):
    return ResultSet(columns, rows)


def answered(result):
    from repro.core.answer import Answer

    return Response.answered(
        "q",
        Answer(
            question="q", normalized_words=["q"], corrections=[],
            interpretation=None, sql="SELECT 1", result=result,
            paraphrase="p",
        ),
    )


def ambiguous(*sqls):
    return Response(
        status=Status.AMBIGUOUS,
        question="q",
        choices=tuple(
            Choice(i, f"reading {i}", sql, 1.0 - i * 0.1)
            for i, sql in enumerate(sqls)
        ),
    )


def failed(code):
    return Response(
        status=Status.FAILED, question="q",
        diagnostics=(Diagnostic(code, "boom"),),
    )


class TestAnswersMatch:
    def test_identical(self):
        assert answers_match(rs(["a"], [(1,), (2,)]), rs(["a"], [(1,), (2,)]))

    def test_row_order_ignored(self):
        assert answers_match(rs(["a"], [(2,), (1,)]), rs(["a"], [(1,), (2,)]))

    def test_column_names_ignored(self):
        assert answers_match(rs(["x"], [(1,)]), rs(["y"], [(1,)]))

    def test_column_count_checked(self):
        assert not answers_match(rs(["a", "b"], [(1, 2)]), rs(["a"], [(1,)]))

    def test_both_empty(self):
        assert answers_match(rs(["a"], []), rs(["b"], []))

    def test_empty_vs_nonempty(self):
        assert not answers_match(rs(["a"], []), rs(["a"], [(1,)]))

    def test_null_rows(self):
        assert answers_match(rs(["a"], [(None,)]), rs(["a"], [(None,)]))
        assert not answers_match(rs(["a"], [(None,)]), rs(["a"], [(0,)]))

    def test_float_tolerance(self):
        # 0.1 + 0.2 != 0.3 exactly; answer_set rounds to 6 places.
        assert answers_match(rs(["a"], [(0.1 + 0.2,)]), rs(["a"], [(0.3,)]))

    def test_float_past_tolerance(self):
        assert not answers_match(rs(["a"], [(0.300001,)]), rs(["a"], [(0.3,)]))


class TestAnswerSetMatches:
    """The stored-gold variant: expected side is plain rows, not a ResultSet."""

    def test_match_against_stored_rows(self):
        assert answer_set_matches(rs(["a"], [(1,), (2,)]), [[2], [1]])

    def test_column_count_enforced_when_given(self):
        produced = rs(["a", "b"], [(1, 2)])
        assert not answer_set_matches(produced, [(1, 2)], expected_columns=1)
        assert answer_set_matches(produced, [(1, 2)], expected_columns=2)

    def test_column_count_skipped_when_none(self):
        assert answer_set_matches(rs(["a", "b"], [(1, 2)]), [(1, 2)])

    def test_empty_expected(self):
        assert answer_set_matches(rs(["a"], []), [])
        assert not answer_set_matches(rs(["a"], [(1,)]), [])

    def test_null_in_stored_rows(self):
        # JSON round-trips NULL as None and tuples as lists.
        assert answer_set_matches(rs(["a"], [("x", None)]), [["x", None]])

    def test_float_rounding_on_produced_side(self):
        assert answer_set_matches(rs(["a"], [(0.1 + 0.2,)]), [[0.3]])


class TestFailureStage:
    @pytest.mark.parametrize(
        "code, stage",
        [
            (EMPTY_QUESTION, "tokenize"),
            (PARSE_FAILURE, "tokenize"),
            (MISSING_CONTEXT, "parse"),
            (INTERPRETATION_ERROR, "parse"),
            (EXECUTION_ERROR, "interpret"),
        ],
    )
    def test_code_mapping(self, code, stage):
        assert failure_stage(failed(code)) == stage

    def test_unknown_code_defaults_to_tokenize(self):
        assert failure_stage(failed("something_new")) == "tokenize"

    def test_no_diagnostics_defaults_to_tokenize(self):
        response = Response(status=Status.FAILED, question="q")
        assert failure_stage(response) == "tokenize"


class TestScoreResponse:
    def test_correct(self):
        score = score_response(answered(rs(["a"], [(1,)])), [[1]])
        assert score == ResponseScore("correct", True, True, False)

    def test_wrong_answer(self):
        score = score_response(answered(rs(["a"], [(1,)])), [[2]])
        assert score == ResponseScore("wrong_answer", False, False, False)

    def test_empty_answer_is_scoreable(self):
        score = score_response(answered(rs(["a"], [])), [])
        assert score.outcome == "correct"

    def test_failed_scores_as_stage(self):
        score = score_response(failed(PARSE_FAILURE), [[1]])
        assert score == ResponseScore("tokenize", False, False, False)

    def test_ambiguous_without_engine_is_a_miss(self):
        response = ambiguous("SELECT name FROM author")
        score = score_response(response, [[1]])
        assert score == ResponseScore("clarification_miss", False, False, True)

    def test_clarification_hit(self, engine):
        gold = engine.execute(
            "SELECT name FROM author WHERE country = 'usa'"
        )
        response = ambiguous(
            "SELECT name FROM author WHERE country = 'poland'",
            "SELECT name FROM author WHERE country = 'usa'",
        )
        score = score_response(
            response, list(gold.answer_set()), engine=engine
        )
        assert score == ResponseScore("clarification_hit", False, True, True)

    def test_clarification_miss_with_engine(self, engine):
        response = ambiguous("SELECT name FROM author WHERE country = 'usa'")
        score = score_response(response, [["nobody"]], engine=engine)
        assert score == ResponseScore("clarification_miss", False, False, True)

    def test_broken_choice_sql_is_skipped(self, engine):
        gold = engine.execute("SELECT title FROM book")
        response = ambiguous(
            "SELECT nope FROM nothing",  # execution error: skipped
            "SELECT title FROM book",
        )
        score = score_response(
            response, list(gold.answer_set()), engine=engine
        )
        assert score.outcome == "clarification_hit"

    def test_column_count_guards_clarification(self, engine):
        # The choice's answer only matches when arity agrees with gold.
        response = ambiguous("SELECT id, name FROM author")
        rows = engine.execute("SELECT id, name FROM author").answer_set()
        hit = score_response(
            response, list(rows), expected_columns=2, engine=engine
        )
        miss = score_response(
            response, list(rows), expected_columns=1, engine=engine
        )
        assert hit.outcome == "clarification_hit"
        assert miss.outcome == "clarification_miss"

    def test_score_is_frozen(self):
        score = ResponseScore("correct", True, True, False)
        with pytest.raises(dataclasses.FrozenInstanceError):
            score.strict = False
