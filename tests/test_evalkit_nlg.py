"""Tests for the evaluation kit, NLG helpers, paraphrase and logical forms."""

import random


from repro.evalkit import (
    StageCounts,
    Tally,
    answers_match,
    corrupt_question,
    corrupt_word,
    format_series,
    format_table,
    pct,
)
from repro.logical import (
    AttrRef,
    BetweenCondition,
    CompareCondition,
    CompareToAggregate,
    CompareToInstance,
    EntityRef,
    LogicalQuery,
    MembershipCondition,
    NullCondition,
    Superlative,
    ValueCondition,
    ValueRef,
)
from repro.nlg import join_words, number_phrase, op_phrase, pluralize
from repro.core.paraphrase import paraphrase
from repro.sqlengine.result import ResultSet


class TestMetrics:
    def test_answers_match_order_insensitive(self):
        a = ResultSet(["x"], [(1,), (2,)])
        b = ResultSet(["y"], [(2,), (1,)])
        assert answers_match(a, b)

    def test_answers_match_float_rounding(self):
        a = ResultSet(["x"], [(0.1 + 0.2,)])
        b = ResultSet(["x"], [(0.3,)])
        assert answers_match(a, b)

    def test_column_count_mismatch(self):
        a = ResultSet(["x"], [(1,)])
        b = ResultSet(["x", "y"], [(1, 2)])
        assert not answers_match(a, b)

    def test_stage_counts(self):
        counts = StageCounts()
        counts.record("q1", "answered", correct=True)
        counts.record("q2", "parse")
        counts.record("q3", "interpret")
        assert counts.total == 3
        assert counts.parsed == 3  # q2 reached parse
        assert counts.interpreted == 2
        assert counts.correct == 1
        assert len(counts.failures) == 2

    def test_tally(self):
        tally = Tally()
        tally.add(True)
        tally.add(False)
        assert tally.accuracy == 0.5
        assert "1/2" in str(tally)

    def test_empty_tally(self):
        assert Tally().accuracy == 0.0


class TestCorruption:
    def test_corrupt_word_changes(self):
        rng = random.Random(1)
        changed = sum(corrupt_word("displacement", rng) != "displacement"
                      for _ in range(20))
        assert changed >= 18  # length>=4 words almost always change

    def test_short_words_untouched(self):
        rng = random.Random(1)
        assert corrupt_word("the", rng) == "the"
        assert corrupt_word("1970", rng) == "1970"

    def test_rate_zero_is_identity(self):
        rng = random.Random(1)
        question = "show the ships in the pacific fleet"
        assert corrupt_question(question, 0.0, rng) == question

    def test_rate_one_corrupts_long_words(self):
        rng = random.Random(1)
        out = corrupt_question("display submarine displacement", 1.0, rng)
        assert out != "display submarine displacement"

    def test_deterministic_given_rng(self):
        a = corrupt_question("show the carriers", 0.5, random.Random(9))
        b = corrupt_question("show the carriers", 0.5, random.Random(9))
        assert a == b


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, "xx"], [22, "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "|" in lines[2]
        assert len(lines) == 6

    def test_format_series(self):
        text = format_series("x", ["y"], [(1, [2]), (3, [4])])
        assert "x" in text and "y" in text

    def test_pct(self):
        assert pct(0.5) == "50.0%"
        assert pct(1.0) == "100.0%"


class TestNlg:
    def test_pluralize_regular(self):
        assert pluralize("ship") == "ships"

    def test_pluralize_sibilant(self):
        assert pluralize("class") == "classes"

    def test_pluralize_y(self):
        assert pluralize("city") == "cities"
        assert pluralize("day") == "days"

    def test_pluralize_irregular(self):
        assert pluralize("person") == "people"

    def test_join_words(self):
        assert join_words([]) == ""
        assert join_words(["a"]) == "a"
        assert join_words(["a", "b"]) == "a and b"
        assert join_words(["a", "b", "c"]) == "a, b and c"
        assert join_words(["a", "b"], "or") == "a or b"

    def test_number_phrase(self):
        assert number_phrase(0, "ship") == "no ships"
        assert number_phrase(1, "ship") == "1 ship"
        assert number_phrase(4, "ship") == "4 ships"

    def test_op_phrase(self):
        assert op_phrase(">=") == "at least"


def _ship(column="displacement"):
    return AttrRef("ship", column, phrase=column)


class TestParaphrase:
    def test_list_query(self):
        query = LogicalQuery(target=EntityRef("ship", phrase="ship"))
        assert paraphrase(query) == "I am listing the ships."

    def test_count_with_condition(self):
        query = LogicalQuery(
            target=EntityRef("ship", phrase="ship"),
            aggregate=__import__("repro.logical", fromlist=["Aggregate"]).Aggregate("count"),
            conditions=(ValueCondition(ValueRef("fleet", "name", "Pacific")),),
        )
        text = paraphrase(query)
        assert "counting the ships" in text
        assert "'Pacific'" in text

    def test_every_condition_type_renders(self):
        conditions = [
            ValueCondition(ValueRef("fleet", "name", "Pacific"), negated=True),
            MembershipCondition((
                ValueRef("port", "name", "Rota"),
                ValueRef("port", "name", "Apra"),
            )),
            CompareCondition(_ship(), ">", 3000),
            BetweenCondition(_ship("crew"), 100, 300),
            NullCondition(_ship("speed")),
            CompareToAggregate(_ship(), ">", "avg", _ship()),
            CompareToInstance(_ship(), ">", ValueRef("ship", "name", "Kennedy")),
        ]
        for condition in conditions:
            query = LogicalQuery(
                target=EntityRef("ship", phrase="ship"), conditions=(condition,)
            )
            text = paraphrase(query)
            assert text.startswith("I am") and text.endswith(".")

    def test_superlative_phrase(self):
        query = LogicalQuery(
            target=EntityRef("ship", phrase="ship"),
            superlative=Superlative(_ship(), "max", 3),
        )
        assert "the 3 with the highest displacement" in paraphrase(query)


class TestLogicalForms:
    def test_condition_tables_collects_everything(self):
        query = LogicalQuery(
            target=EntityRef("ship"),
            projections=(AttrRef("officer", "name"),),
            conditions=(
                ValueCondition(ValueRef("fleet", "name", "Pacific")),
                MembershipCondition((ValueRef("port", "name", "Rota"),)),
                CompareCondition(AttrRef("deployment", "year"), ">", 1970),
            ),
            group_by=AttrRef("shiptype", "name"),
        )
        assert query.condition_tables() == {
            "ship", "officer", "fleet", "port", "deployment", "shiptype",
        }

    def test_add_condition_returns_new(self):
        query = LogicalQuery(target=EntityRef("ship"))
        extended = query.add_condition(
            CompareCondition(_ship(), ">", 1)
        )
        assert not query.conditions and len(extended.conditions) == 1

    def test_describe_deterministic(self):
        query = LogicalQuery(
            target=EntityRef("ship", phrase="ship"),
            conditions=(CompareCondition(_ship(), ">", 3000),),
        )
        assert query.describe() == query.describe()
