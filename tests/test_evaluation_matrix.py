"""The evaluation matrix: gold files, runner cells, aggregation, CI gate.

The committed gold JSONL files are data — these tests keep them honest
(loadable, in-format, and still agreeing with their own gold SQL) and
exercise the (domain × configuration) machinery on a few real cells so
the CI job cannot be green while the matrix is broken.
"""

import json

import pytest

from repro.datasets import ALL_DOMAINS, load_bundle
from repro.evaluation import (
    CellResult,
    GoldItem,
    build_goldset,
    cell_questions,
    get_configuration,
    load_goldset,
    run_cell,
)
from repro.evaluation.collect_results import (
    BASELINE_PATH,
    check_baseline,
    matrix_json,
    matrix_markdown,
)
from repro.evaluation.goldsets import GOLD_DIR, write_goldset
from repro.sqlengine import Engine


@pytest.fixture(scope="module", params=ALL_DOMAINS)
def domain(request):
    return request.param


class TestGoldFiles:
    def test_committed_gold_file_loads(self, domain):
        items = load_goldset(domain)
        assert len(items) >= 60
        for item in items:
            assert item.question and item.gold_sql and item.tags
            assert item.columns >= 1

    def test_stored_answers_still_match_gold_sql(self, domain):
        """Integrity: regenerating from the live corpus is a no-op."""
        items = load_goldset(domain)
        bundle = load_bundle(domain)
        engine = Engine(bundle.database)
        for item in items:
            produced = engine.execute(item.gold_sql)
            assert produced.answer_set() == item.answer_set, item.question

    def test_gold_matches_live_corpus(self, domain):
        """The committed file covers exactly the corpus questions."""
        committed = {item.question for item in load_goldset(domain)}
        live = {e.question for e in load_bundle(domain).corpus}
        assert committed == live

    def test_roundtrip(self, tmp_path):
        items = build_goldset(load_bundle("saas"))
        path = tmp_path / "saas.jsonl"
        write_goldset(items, path)
        assert load_goldset("saas", tmp_path) == items

    def test_header_is_validated(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(ValueError, match="not a repro-gold"):
            load_goldset("fleet", tmp_path)

    def test_all_domains_have_committed_files(self):
        committed = {p.stem for p in GOLD_DIR.glob("*.jsonl")}
        assert committed == set(ALL_DOMAINS)


class TestCellQuestions:
    def test_clean_configuration_is_identity(self):
        items = load_goldset("fleet")
        config = get_configuration("nli")
        assert cell_questions("fleet", config, items) == [
            i.question for i in items
        ]

    def test_corruption_is_reproducible(self):
        items = load_goldset("fleet")
        config = get_configuration("nli-corrupt")
        first = cell_questions("fleet", config, items)
        second = cell_questions("fleet", config, items)
        assert first == second
        assert first != [i.question for i in items]

    def test_corruption_is_per_domain(self):
        """Different domains draw from independent RNG streams."""
        config = get_configuration("nli-corrupt")
        fleet = cell_questions("fleet", config, load_goldset("fleet"))
        saas = cell_questions("saas", config, load_goldset("saas"))
        assert fleet != saas


class TestRunCell:
    def test_nli_cell_is_perfect_on_clean_questions(self):
        cell = run_cell("saas", get_configuration("nli"))
        assert cell.total >= 60
        assert cell.accuracy == 1.0
        assert cell.gold_drift == 0
        assert cell.clarifications == 0

    def test_steiner_join_questions_answered(self):
        """The new schemas answer cross-table (2-hop) join questions."""
        for name in ("saas", "events"):
            items = [
                item for item in load_goldset(name) if "join" in item.tags
            ]
            assert items, f"{name} has no join questions"
            cell = run_cell(name, get_configuration("nli"), items)
            assert cell.accuracy == 1.0, (name, cell.misses)

    def test_wide_margin_cell_takes_clarification_path(self):
        cell = run_cell("fleet", get_configuration("nli-clarify-0.75"))
        assert cell.clarifications > 0
        assert cell.resolved_correct > cell.strict_correct
        # Every clarification offered the gold reading among its choices.
        assert cell.taxonomy["clarification_miss"] == 0
        assert cell.resolved_accuracy == 1.0

    def test_keyword_cell_fails_structurally(self):
        cell = run_cell("events", get_configuration("keyword"))
        assert 0.0 < cell.accuracy < 1.0
        assert sum(cell.taxonomy.values()) == cell.total - cell.strict_correct
        assert cell.misses


def _cell(configuration, domain, correct, total=10):
    return CellResult(
        domain=domain, configuration=configuration,
        total=total, strict_correct=correct, resolved_correct=correct,
    )


class TestAggregation:
    def test_matrix_json_shape(self):
        cells = [_cell("nli", d, 10) for d in ALL_DOMAINS]
        document = matrix_json(cells)
        assert set(document["cells"]["nli"]) == set(ALL_DOMAINS)
        assert document["cells"]["nli"]["fleet"]["accuracy"] == 1.0

    def test_matrix_markdown_covers_every_cell(self):
        cells = [
            _cell(c, d, 5)
            for c in ("nli", "keyword", "template")
            for d in ALL_DOMAINS
        ]
        markdown = matrix_markdown(cells)
        for d in ALL_DOMAINS:
            assert d in markdown
        assert "| `nli` |" in markdown
        assert "50.0%" in markdown


class TestBaselineGate:
    def _baseline(self, tmp_path, cells):
        path = tmp_path / "baseline_matrix.json"
        path.write_text(json.dumps(matrix_json(cells)))
        return path

    def test_equal_accuracy_passes(self, tmp_path):
        cells = [_cell("nli", "fleet", 8)]
        path = self._baseline(tmp_path, cells)
        assert check_baseline(cells, path) == []

    def test_improvement_passes(self, tmp_path):
        path = self._baseline(tmp_path, [_cell("nli", "fleet", 8)])
        assert check_baseline([_cell("nli", "fleet", 9)], path) == []

    def test_drop_is_flagged(self, tmp_path):
        path = self._baseline(tmp_path, [_cell("nli", "fleet", 8)])
        problems = check_baseline([_cell("nli", "fleet", 7)], path)
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_missing_cell_is_flagged(self, tmp_path):
        path = self._baseline(tmp_path, [
            _cell("nli", "fleet", 8), _cell("nli", "saas", 8),
        ])
        problems = check_baseline([_cell("nli", "fleet", 8)], path)
        assert problems == ["cell (nli, saas) missing from this run"]

    def test_new_cell_without_baseline_passes(self, tmp_path):
        path = self._baseline(tmp_path, [_cell("nli", "fleet", 8)])
        extra = [_cell("nli", "fleet", 8), _cell("nli", "events", 1)]
        assert check_baseline(extra, path) == []

    def test_committed_baseline_covers_full_matrix(self):
        """Every (configuration, domain) cell has a recorded floor."""
        baseline = json.loads(BASELINE_PATH.read_text())
        from repro.evaluation import CONFIGURATION_NAMES

        assert set(baseline["cells"]) == set(CONFIGURATION_NAMES)
        for domains in baseline["cells"].values():
            assert set(domains) == set(ALL_DOMAINS)


class TestGoldItemApi:
    def test_answer_set_is_hash_comparable(self):
        item = GoldItem(
            domain="fleet", question="q", gold_sql="s", tags=("select",),
            columns=1, answer=((1,), (2,)),
        )
        assert item.answer_set == frozenset({(1,), (2,)})
