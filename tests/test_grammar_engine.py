"""Tests for the grammar formalism and the Earley lattice parser."""

import pytest

from repro.errors import GrammarError, ParseFailure
from repro.grammar import (
    EarleyParser,
    Grammar,
    GrammarBuilder,
    Production,
    StaticMatcher,
    TerminalMatch,
)
from repro.grammar.rules import is_category, is_literal, is_terminal, literal_word


class TestSymbols:
    def test_literal(self):
        assert is_literal("'word'")
        assert literal_word("'word'") == "word"
        assert not is_literal("word")

    def test_category(self):
        assert is_category("ENTITY")
        assert not is_category("'up'")
        assert not is_category("Query")

    def test_terminal(self):
        assert is_terminal("'x'") and is_terminal("ATTR")
        assert not is_terminal("NonTerm")


class TestGrammarValidation:
    def test_terminal_lhs_rejected(self):
        with pytest.raises(GrammarError):
            Production("ENTITY", ("'x'",))

    def test_missing_start_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("Start", [Production("Term", ("'x'",))])

    def test_undefined_nonterminal_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("Start", [Production("Start", ("Missing",))])

    def test_builder_shortcuts(self):
        g = (
            GrammarBuilder("Start")
            .rule("Start", "'a' Bb")
            .alias("Bb", "Cc")
            .words("Cc", "x", "y")
            .build()
        )
        assert len(g) == 4
        assert g.terminals == {"'a'", "'x'", "'y'"}
        assert g.nonterminals == {"Start", "Bb", "Cc"}


def simple_grammar():
    """S -> 'the' NOUN | 'the' NOUN 'of' NOUN, value = noun payloads."""
    return (
        GrammarBuilder("Start")
        .rule("Start", "'the' NOUN", lambda c: [c[1]])
        .rule("Start", "'the' NOUN 'of' NOUN", lambda c: [c[1], c[3]])
        .build()
    )


class TestEarley:
    def test_simple_parse(self):
        grammar = simple_grammar()
        matcher = StaticMatcher([TerminalMatch("NOUN", 1, 2, "ship")])
        results = EarleyParser(grammar).parse(["the", "ship"], matcher)
        assert results[0].value == ["ship"]

    def test_multi_token_terminal(self):
        grammar = simple_grammar()
        matcher = StaticMatcher([TerminalMatch("NOUN", 1, 3, "pearl harbor")])
        results = EarleyParser(grammar).parse(["the", "pearl", "harbor"], matcher)
        assert results[0].value == ["pearl harbor"]

    def test_ambiguous_terminals_yield_multiple_parses(self):
        grammar = simple_grammar()
        matcher = StaticMatcher([
            TerminalMatch("NOUN", 1, 2, "reading-a"),
            TerminalMatch("NOUN", 1, 2, "reading-b"),
        ])
        results = EarleyParser(grammar).parse(["the", "x"], matcher)
        values = {tuple(r.value) for r in results}
        assert values == {("reading-a",), ("reading-b",)}

    def test_longer_rule_wins_full_coverage(self):
        grammar = simple_grammar()
        matcher = StaticMatcher([
            TerminalMatch("NOUN", 1, 2, "a"),
            TerminalMatch("NOUN", 3, 4, "b"),
        ])
        results = EarleyParser(grammar).parse(["the", "a", "of", "b"], matcher)
        assert results[0].value == ["a", "b"]

    def test_partial_parse_fails(self):
        grammar = simple_grammar()
        matcher = StaticMatcher([TerminalMatch("NOUN", 1, 2, "a")])
        with pytest.raises(ParseFailure):
            EarleyParser(grammar).parse(["the", "a", "leftover"], matcher)

    def test_no_parse_raises_with_tokens(self):
        grammar = simple_grammar()
        with pytest.raises(ParseFailure) as info:
            EarleyParser(grammar).parse(["banana"], StaticMatcher([]))
        assert info.value.tokens == ["banana"]

    def test_recursive_grammar(self):
        # List -> NOUN | NOUN 'and' List (right recursion)
        grammar = (
            GrammarBuilder("Items")
            .rule("Items", "NOUN", lambda c: [c[0]])
            .rule("Items", "NOUN 'and' Items", lambda c: [c[0]] + c[2])
            .build()
        )
        matcher = StaticMatcher([
            TerminalMatch("NOUN", 0, 1, "a"),
            TerminalMatch("NOUN", 2, 3, "b"),
            TerminalMatch("NOUN", 4, 5, "c"),
        ])
        results = EarleyParser(grammar).parse(["a", "and", "b", "and", "c"], matcher)
        assert results[0].value == ["a", "b", "c"]

    def test_duplicate_semantic_values_deduped(self):
        grammar = (
            GrammarBuilder("Start")
            .rule("Start", "Aa", lambda c: "same")
            .rule("Start", "Bb", lambda c: "same")
            .rule("Aa", "'x'", lambda c: None)
            .rule("Bb", "'x'", lambda c: None)
            .build()
        )
        results = EarleyParser(grammar).parse(["x"], StaticMatcher([]))
        assert len(results) == 1

    def test_max_parses_cap(self):
        grammar = simple_grammar()
        matcher = StaticMatcher(
            [TerminalMatch("NOUN", 1, 2, f"v{i}") for i in range(10)]
        )
        results = EarleyParser(grammar).parse(["the", "x"], matcher, max_parses=3)
        assert len(results) == 3

    def test_recognizes(self):
        grammar = simple_grammar()
        matcher = StaticMatcher([TerminalMatch("NOUN", 1, 2, "a")])
        parser = EarleyParser(grammar)
        assert parser.recognizes(["the", "a"], matcher)
        assert not parser.recognizes(["a", "the"], matcher)
