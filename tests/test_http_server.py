"""The HTTP front end: status mapping, wire fidelity, durability.

Every test talks to a real server on an ephemeral loopback port (the
asyncio stack, the worker pool and the RW lock are all live); the wire
payloads are asserted to be exactly ``Response.to_dict()`` JSON plus the
documented ``session`` echo.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import NliConfig
from repro.datasets import fleet
from repro.server import serve_in_thread
from repro.server.http import MAX_BODY_BYTES, response_http_code
from repro.service import Response, SessionLog, Status
from repro.service.service import NliService


def _call(url: str, path: str, payload=None, raw: bytes | None = None):
    """(http code, decoded json, headers) for one round trip."""
    if payload is None and raw is None:
        request = urllib.request.Request(url + path)
    else:
        data = raw if raw is not None else json.dumps(payload).encode()
        request = urllib.request.Request(url + path, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


@pytest.fixture(scope="module")
def service():
    svc = NliService(
        fleet.build_database(seed=5, ships=60),
        domain=fleet.domain(),
        config=NliConfig(clarification_margin=10.0),
    )
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def server(service):
    handle = serve_in_thread(service)
    yield handle
    handle.stop()


class TestStatusMapping:
    def test_answered_is_200_and_exact_envelope(self, server, service):
        code, wire, _ = _call(server.url, "/ask",
                              {"question": "how many ships are there"})
        assert code == 200
        assert wire["status"] == "answered"
        # The wire payload is exactly Response.to_dict(): rebuild and compare.
        rebuilt = Response.from_dict(wire)
        assert rebuilt.status is Status.ANSWERED
        assert rebuilt.answer.result.scalar() == 60
        assert set(wire) == {
            "status", "question", "answer", "diagnostics", "choices",
            "clarification_id", "tokens", "retry_after_s", "error_type",
        }

    def test_ambiguous_is_409_with_choices(self, server):
        code, wire, _ = _call(
            server.url, "/ask",
            {"question": "ships from norfolk", "clarify": True},
        )
        assert code == 409
        assert wire["status"] == "ambiguous"
        assert len(wire["choices"]) >= 2
        assert wire["clarification_id"]

    def test_needs_clarification_is_409(self, server):
        # A fragment with no session context cannot be completed.
        code, wire, _ = _call(server.url, "/ask",
                              {"question": "what about the carriers"})
        assert code == 409
        assert wire["status"] == "needs_clarification"

    def test_failed_is_422(self, server):
        code, wire, _ = _call(server.url, "/ask",
                              {"question": "colorless green ideas sleep"})
        assert code == 422
        assert wire["status"] == "failed"

    def test_response_http_code_covers_every_status(self):
        for status in Status:
            response = Response(status=status, question="q")
            assert response_http_code(response) in (200, 409, 422)


class TestTransportErrors:
    def test_malformed_json_is_400(self, server):
        code, wire, _ = _call(server.url, "/ask", raw=b"{not json at all")
        assert code == 400
        assert wire["error"]["code"] == "malformed_json"

    def test_non_object_body_is_400(self, server):
        code, wire, _ = _call(server.url, "/ask", raw=b'["a", "list"]')
        assert code == 400
        assert wire["error"]["code"] == "malformed_json"

    def test_missing_question_is_400(self, server):
        code, wire, _ = _call(server.url, "/ask", {"quesiton": "typo"})
        assert code == 400
        assert wire["error"]["code"] == "bad_field"

    def test_non_string_question_is_400(self, server):
        code, wire, _ = _call(server.url, "/ask", {"question": 42})
        assert code == 400

    def test_bad_questions_list_is_400(self, server):
        code, wire, _ = _call(server.url, "/ask_many", {"questions": "one"})
        assert code == 400

    def test_unknown_path_is_404(self, server):
        code, wire, _ = _call(server.url, "/nope", {"question": "x"})
        assert code == 404
        assert wire["error"]["code"] == "unknown_endpoint"

    def test_wrong_method_is_405_with_allow(self, server):
        code, wire, headers = _call(server.url, "/ask")  # GET
        assert code == 405
        assert headers["Allow"] == "POST"

    def test_unknown_clarification_is_404(self, server):
        code, wire, _ = _call(
            server.url, "/resolve",
            {"clarification_id": "clar-999999", "choice": 0},
        )
        assert code == 404
        assert wire["error"]["code"] == "unknown_clarification"

    def test_bad_choice_type_is_400(self, server):
        code, wire, _ = _call(
            server.url, "/resolve",
            {"clarification_id": "clar-1", "choice": "first"},
        )
        assert code == 400

    def test_out_of_range_choice_on_live_clarification_is_400(self, server):
        code, ambiguous, _ = _call(
            server.url, "/ask",
            {"question": "ships from norfolk", "clarify": True},
        )
        assert code == 409
        code, wire, _ = _call(
            server.url, "/resolve",
            {"clarification_id": ambiguous["clarification_id"], "choice": 99},
        )
        assert code == 400
        assert wire["error"]["code"] == "bad_choice"
        # Still parked: picking a valid index afterwards works.
        code, resolved, _ = _call(
            server.url, "/resolve",
            {"clarification_id": ambiguous["clarification_id"], "choice": 0},
        )
        assert code == 200

    def test_oversized_request_line_is_400(self, server):
        reply = self._raw_request(
            server, "GET /" + "x" * (128 * 1024) + " HTTP/1.1\r\n\r\n"
        )
        assert reply.startswith("HTTP/1.1 400 ")

    def _raw_request(self, server, head: str) -> str:
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            try:
                sock.sendall(head.encode("latin-1"))
            except (BrokenPipeError, ConnectionResetError):
                pass  # server may answer-and-close before we finish sending
            chunks = []
            try:
                while chunk := sock.recv(4096):
                    chunks.append(chunk)
            except ConnectionResetError:
                pass
        return b"".join(chunks).decode("latin-1")

    def test_negative_content_length_is_400(self, server):
        reply = self._raw_request(
            server, "POST /ask HTTP/1.1\r\nContent-Length: -1\r\n\r\n"
        )
        assert reply.startswith("HTTP/1.1 400 ")

    def test_unparseable_content_length_is_400(self, server):
        reply = self._raw_request(
            server, "POST /ask HTTP/1.1\r\nContent-Length: lots\r\n\r\n"
        )
        assert reply.startswith("HTTP/1.1 400 ")

    def test_oversized_body_is_413(self, server):
        # The header alone triggers the refusal: the body is never read.
        reply = self._raw_request(
            server,
            f"POST /ask HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n",
        )
        assert reply.startswith("HTTP/1.1 413 ")


class TestProtocolFlows:
    def test_clarification_resolves_over_http(self, server):
        code, ambiguous, _ = _call(
            server.url, "/ask",
            {"question": "ships from norfolk", "clarify": True,
             "session": "flows"},
        )
        assert code == 409
        assert ambiguous["session"] == "flows"
        picked = ambiguous["choices"][1]
        code, resolved, _ = _call(
            server.url, "/resolve",
            {"clarification_id": ambiguous["clarification_id"],
             "choice": picked["index"]},
        )
        assert code == 200
        assert resolved["answer"]["sql"] == picked["sql"]
        # Consumed: a second resolve is a 404.
        code, _, _ = _call(
            server.url, "/resolve",
            {"clarification_id": ambiguous["clarification_id"],
             "choice": picked["index"]},
        )
        assert code == 404

    def test_session_follow_up_binds_to_context(self, server):
        code, first, _ = _call(
            server.url, "/ask",
            {"question": "ships in the pacific fleet", "session": "ctx"},
        )
        assert code == 200
        code, followup, _ = _call(
            server.url, "/ask",
            {"question": "how many of them are there", "session": "ctx"},
        )
        assert code == 200
        assert followup["answer"]["sql"].lower().startswith("select count")

    def test_ask_many_batches(self, server):
        code, wire, _ = _call(
            server.url, "/ask_many",
            {"questions": ["how many ships are there", "show the carriers"]},
        )
        assert code == 200
        statuses = [envelope["status"] for envelope in wire["responses"]]
        assert statuses == ["answered", "answered"]

    def test_sql_endpoint(self, server):
        code, wire, _ = _call(
            server.url, "/sql", {"sql": "SELECT count(*) FROM ship"}
        )
        assert code == 200
        assert wire["rows"] == [[60]]

    def test_sql_error_is_422(self, server):
        code, wire, _ = _call(server.url, "/sql", {"sql": "SELEKT nope"})
        assert code == 422
        assert wire["error"]["code"] == "engine_error"

    def test_healthz_and_stats(self, server):
        code, health, _ = _call(server.url, "/healthz")
        assert (code, health) == (200, {"status": "ok"})
        code, stats, _ = _call(server.url, "/stats")
        assert code == 200
        assert stats["http"]["requests"] > 0
        assert "asks" in stats["service"]

    def test_response_cache_serves_repeat_asks(self, server):
        question = "ships commissioned in 1970"
        _call(server.url, "/ask", {"question": question})
        before = server.server.stats["cache_hits"]
        code, wire, _ = _call(server.url, "/ask", {"question": question})
        assert code == 200
        assert server.server.stats["cache_hits"] == before + 1
        # Cached bytes decode to the same envelope as a fresh ask.
        assert wire["status"] == "answered"

    def test_dml_invalidates_response_cache(self, server):
        question = "how many ports are there"
        _, first, _ = _call(server.url, "/ask", {"question": question})
        baseline = first["answer"]["rows"][0][0]
        _call(server.url, "/sql", {
            "sql": "INSERT INTO port VALUES (901, 'Cacheville', 'usa')"
        })
        _, after, _ = _call(server.url, "/ask", {"question": question})
        assert after["answer"]["rows"][0][0] == baseline + 1


class TestRateLimiting:
    def test_429_with_retry_after(self):
        service = NliService(
            fleet.build_database(seed=5, ships=30),
            domain=fleet.domain(),
            config=NliConfig(rate_limit_qps=0.001, rate_limit_burst=2),
        )
        handle = serve_in_thread(service)
        try:
            body = {"question": "how many ships are there", "session": "limited"}
            # First request creates the session (charged to the client
            # address); the next two burn the session's burst of 2.
            assert _call(handle.url, "/ask", body)[0] == 200
            assert _call(handle.url, "/ask", body)[0] == 200
            assert _call(handle.url, "/ask", body)[0] == 200
            code, wire, headers = _call(handle.url, "/ask", body)
            assert code == 429
            assert wire["diagnostics"][0]["code"] == "rate_limited"
            assert wire["retry_after_s"] > 0
            assert int(headers["Retry-After"]) >= 1
            # An established session has its own budget.
            service.ensure_session("calm")
            other = {"question": "how many ships are there", "session": "calm"}
            assert _call(handle.url, "/ask", other)[0] == 200
        finally:
            handle.stop()
            service.close()

    def test_fresh_session_ids_share_the_address_budget(self):
        service = NliService(
            fleet.build_database(seed=5, ships=30),
            domain=fleet.domain(),
            config=NliConfig(rate_limit_qps=0.001, rate_limit_burst=2),
        )
        handle = serve_in_thread(service)
        try:
            # Minting a new session per request must not mint a new budget:
            # creation is charged to the client address.
            codes = [
                _call(handle.url, "/ask",
                      {"question": "how many ships are there",
                       "session": f"fresh-{i}"})[0]
                for i in range(3)
            ]
            assert codes == [200, 200, 429]
        finally:
            handle.stop()
            service.close()

    def test_ask_many_rate_limited_batch_is_429(self):
        service = NliService(
            fleet.build_database(seed=5, ships=30),
            domain=fleet.domain(),
            config=NliConfig(rate_limit_qps=0.001, rate_limit_burst=1),
        )
        handle = serve_in_thread(service)
        try:
            service.ensure_session("b")  # established: keyed by session id
            body = {"questions": ["how many ships are there"], "session": "b"}
            assert _call(handle.url, "/ask_many", body)[0] == 200
            code, wire, headers = _call(handle.url, "/ask_many", body)
            assert code == 429
            assert int(headers["Retry-After"]) >= 1
            assert wire["responses"][0]["diagnostics"][0]["code"] == "rate_limited"
        finally:
            handle.stop()
            service.close()

    def test_cache_hits_still_charge_the_budget(self):
        service = NliService(
            fleet.build_database(seed=5, ships=30),
            domain=fleet.domain(),
            config=NliConfig(rate_limit_qps=0.001, rate_limit_burst=3),
        )
        handle = serve_in_thread(service)
        try:
            body = {"question": "how many ships are there"}
            for _ in range(3):  # one miss + two cache hits, all same client
                _call(handle.url, "/ask", body)
            code, _, _ = _call(handle.url, "/ask", body)
            assert code == 429
        finally:
            handle.stop()
            service.close()


class TestDurability:
    def _service(self, log_path):
        return NliService(
            fleet.build_database(seed=5, ships=60),
            domain=fleet.domain(),
            config=NliConfig(clarification_margin=10.0),
            persistence=SessionLog(log_path),
        )

    def test_resolve_after_restart(self, tmp_path):
        log_path = tmp_path / "sessions.jsonl"
        first = self._service(log_path)
        handle = serve_in_thread(first)
        code, ambiguous, _ = _call(
            handle.url, "/ask",
            {"question": "ships from norfolk", "clarify": True,
             "session": "durable"},
        )
        assert code == 409
        handle.stop()
        first.close()  # simulated crash: nothing else flushed

        second = self._service(log_path)
        handle = serve_in_thread(second)
        try:
            picked = ambiguous["choices"][0]
            code, resolved, _ = _call(
                handle.url, "/resolve",
                {"clarification_id": ambiguous["clarification_id"],
                 "choice": picked["index"]},
            )
            assert code == 200
            assert resolved["answer"]["sql"] == picked["sql"]
            # The session context survived too: follow-ups bind to the
            # clarified reading.
            code, followup, _ = _call(
                handle.url, "/ask",
                {"question": "how many of them are there",
                 "session": "durable"},
            )
            assert code == 200
        finally:
            handle.stop()
            second.close()


class TestConcurrentAskers:
    def test_parallel_clients_against_live_server(self, server, service):
        questions = [
            "how many ships are there",
            "show the carriers",
            "ships commissioned in 1970",
            "how many ships are in the pacific fleet",
        ]
        errors: list[Exception] = []

        def client(worker: int) -> None:
            try:
                for i in range(6):
                    question = questions[(worker + i) % len(questions)]
                    code, wire, _ = _call(server.url, "/ask",
                                          {"question": question})
                    assert code == 200, wire
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(worker,)) for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert server.server.stats["requests"] >= 48


class TestMultiDomainLocal:
    """One server, several in-process services behind a ServiceBackend."""

    @pytest.fixture(scope="class")
    def multi(self):
        from repro.datasets import load_bundle
        from repro.server import ServiceBackend

        services = {}
        for name in ("fleet", "geography"):
            bundle = load_bundle(name)
            services[name] = NliService(
                bundle.database, domain=bundle.model,
                config=NliConfig(clarification_margin=10.0),
            )
        backend = ServiceBackend(services, default_domain="fleet")
        handle = serve_in_thread(backend=backend, domain_qps=0.001,
                                 domain_burst=3)
        yield handle
        handle.stop()
        for svc in services.values():
            svc.close()

    def test_path_routing_hits_the_named_domain(self, multi):
        code, wire, _ = _call(
            multi.url, "/d/geography/ask",
            {"question": "which rivers are in the usa"},
        )
        assert code == 200
        assert wire["status"] == "answered"

    def test_body_domain_field_routes_too(self, multi):
        code, wire, _ = _call(
            multi.url, "/ask",
            {"question": "which rivers are in the usa",
             "domain": "geography"},
        )
        assert code == 200

    def test_bare_path_uses_default_domain(self, multi):
        code, wire, _ = _call(
            multi.url, "/ask", {"question": "how many ships are there"}
        )
        assert code == 200
        assert wire["answer"]["rows"] == [[60]]

    def test_conflicting_path_and_body_domain_400(self, multi):
        code, wire, _ = _call(
            multi.url, "/d/fleet/ask",
            {"question": "hello", "domain": "geography"},
        )
        assert code == 400
        assert wire["error"]["code"] == "bad_field"

    def test_unknown_domain_404_both_spellings(self, multi):
        code, wire, _ = _call(multi.url, "/d/narnia/ask", {"question": "q"})
        assert code == 404
        assert wire["error"]["code"] == "unknown_domain"
        code, wire, _ = _call(
            multi.url, "/ask", {"question": "q", "domain": "narnia"}
        )
        assert code == 404
        assert wire["error"]["code"] == "unknown_domain"

    def test_per_domain_stats_and_overall(self, multi):
        code, wire, _ = _call(multi.url, "/d/geography/stats")
        assert code == 200
        assert "service" in wire and "http" in wire
        code, overall, _ = _call(multi.url, "/stats")
        assert set(overall["domains"]) == {"fleet", "geography"}

    def test_domain_bucket_limits_one_domain_not_the_other(self, multi):
        # Burst 3 at ~zero refill: drain geography's bucket...
        codes = []
        for _ in range(5):
            code, wire, headers = _call(
                multi.url, "/d/geography/ask",
                {"question": "which rivers are in the usa"},
            )
            codes.append(code)
            if code == 429:
                assert "Retry-After" in headers
                assert wire["retry_after_s"] is not None
        assert 429 in codes
        # ...fleet's bucket is untouched: its requests still land.
        code, wire, _ = _call(
            multi.url, "/ask", {"question": "how many ships are there"}
        )
        assert code == 200


class TestDomainRefund:
    """All-or-nothing across the limiter layers: a per-client rejection
    refunds the domain bucket."""

    def test_per_key_rejection_gives_domain_tokens_back(self):
        svc = NliService(
            fleet.build_database(seed=5, ships=60),
            domain=fleet.domain(),
            # Per-session limiter that rejects from the second request on.
            config=NliConfig(rate_limit_qps=0.001, rate_limit_burst=1),
        )
        from repro.server import ServiceBackend

        backend = ServiceBackend({"fleet": svc})
        handle = serve_in_thread(backend=backend, domain_qps=0.001,
                                 domain_burst=8)
        try:
            question = {"question": "how many ships are there"}
            code, _, _ = _call(handle.url, "/ask", question)
            assert code == 200
            # Five more: every one 429s at the per-client layer.  Without
            # the refund these would also drain 5 domain tokens.
            for _ in range(5):
                code, _, _ = _call(handle.url, "/ask", question)
                assert code == 429
            limiter = handle.server._domain_limiter
            bucket = limiter._buckets["fleet"]
            # One domain token spent (the single 200), the refunds put
            # the rejected requests' tokens back.
            assert bucket.tokens >= limiter.burst - 1.5
        finally:
            handle.stop()
            svc.close()
