"""Unit tests for the interpreter, SQL generator, dialogue algebra and CLI."""

import io

import pytest

from repro.core.dialogue import Session, condition_column, merge_fragment
from repro.core.interpret import Interpreter, display_attr, display_attrs
from repro.core.sqlgen import SqlGenerator
from repro.datasets import fleet
from repro.errors import DialogueError, InterpretationError
from repro.grammar.sketch import Sketch
from repro.logical import (
    Aggregate,
    AttrRef,
    CompareCondition,
    CompareToInstance,
    EntityRef,
    LogicalQuery,
    MembershipCondition,
    OrderSpec,
    Superlative,
    ValueCondition,
    ValueRef,
)
from repro.schemagraph import SchemaGraph
from repro.sqlengine import Engine


@pytest.fixture(scope="module")
def fleet_db():
    return fleet.build_database()


@pytest.fixture(scope="module")
def graph(fleet_db):
    return SchemaGraph(fleet_db)


@pytest.fixture(scope="module")
def interpreter(fleet_db, graph):
    return Interpreter(fleet_db, graph, fleet.domain())


@pytest.fixture(scope="module")
def sqlgen(fleet_db, graph):
    return SqlGenerator(fleet_db, graph, fleet.domain())


def ship_entity():
    return EntityRef("ship", phrase="ship")


class TestDisplayAttrs:
    def test_domain_display_column(self, fleet_db):
        attr = display_attr(fleet_db, fleet.domain(), "ship")
        assert attr.column == "name"

    def test_fallback_to_name_column(self, fleet_db):
        attr = display_attr(fleet_db, None, "officer")
        assert attr.column == "name"

    def test_fallback_to_pk(self, fleet_db):
        attr = display_attr(fleet_db, None, "deployment")
        # deployment has no domain display; 'id' pk fallback unless a
        # 'name' column exists (it does not)
        assert attr.column in ("id", "mission")

    def test_display_attrs_tuple(self, fleet_db):
        attrs = display_attrs(fleet_db, fleet.domain(), "ship")
        assert [a.column for a in attrs] == ["name"]


class TestInterpreter:
    def test_fragment_rejected(self, interpreter):
        with pytest.raises(InterpretationError):
            interpreter.interpret([Sketch(fragment=True)])

    def test_entity_inferred_from_projection(self, interpreter):
        sketch = Sketch(qtype="attr", projections=(AttrRef("ship", "speed"),))
        result = interpreter.interpret([sketch])
        assert result[0].query.target.table == "ship"

    def test_entity_inferred_from_condition(self, interpreter):
        sketch = Sketch(
            conditions=(ValueCondition(ValueRef("port", "name", "Rota")),)
        )
        result = interpreter.interpret([sketch])
        assert result[0].query.target.table == "port"

    def test_mixed_membership_columns_rejected(self, interpreter):
        sketch = Sketch(
            entity=ship_entity(),
            conditions=(
                MembershipCondition((
                    ValueRef("port", "name", "Rota"),
                    ValueRef("fleet", "name", "Pacific"),
                )),
            ),
        )
        with pytest.raises(InterpretationError):
            interpreter.interpret([sketch])

    def test_penalty_lowers_score(self, interpreter):
        clean = Sketch(entity=ship_entity())
        penalised = Sketch(entity=ship_entity(), penalty=3.0)
        scores = {
            id(s): interpreter.interpret([s])[0].score for s in (clean, penalised)
        }
        assert scores[id(clean)] > scores[id(penalised)]

    def test_ranking_prefers_fewer_joins(self, interpreter):
        near = Sketch(
            entity=ship_entity(),
            conditions=(ValueCondition(ValueRef("ship", "name", "Enterprise")),),
        )
        far = Sketch(
            entity=ship_entity(),
            conditions=(ValueCondition(ValueRef("officer", "name", "Halsey")),),
        )
        result = interpreter.interpret([far, near])
        assert result[0].query.conditions[0].value.table == "ship"

    def test_aggregate_without_attr_rejected(self, interpreter):
        sketch = Sketch(entity=ship_entity(), agg_function="avg", qtype="agg")
        with pytest.raises(InterpretationError):
            interpreter.interpret([sketch])

    def test_group_by_entity_resolves_display_attr(self, interpreter):
        sketch = Sketch(
            entity=ship_entity(), agg_function="count", qtype="count",
            group_by=EntityRef("fleet", phrase="fleet"),
        )
        query = interpreter.interpret([sketch])[0].query
        assert query.group_by == display_attr(
            interpreter.database, interpreter.domain, "fleet"
        )


class TestSqlGenerator:
    def run(self, sqlgen, fleet_db, query):
        return Engine(fleet_db).execute(sqlgen.generate(query))

    def test_plain_list(self, sqlgen, fleet_db):
        query = LogicalQuery(target=ship_entity())
        result = self.run(sqlgen, fleet_db, query)
        assert result.columns == ["name"] and len(result) == 60

    def test_join_emitted_and_distinct(self, sqlgen):
        query = LogicalQuery(
            target=ship_entity(),
            conditions=(ValueCondition(ValueRef("fleet", "name", "Pacific")),),
        )
        sql = sqlgen.generate_sql(query)
        assert "JOIN fleet" in sql and sql.startswith("SELECT DISTINCT")

    def test_count_with_join_is_distinct_pk(self, sqlgen):
        query = LogicalQuery(
            target=ship_entity(),
            aggregate=Aggregate("count"),
            conditions=(ValueCondition(ValueRef("fleet", "name", "Pacific")),),
        )
        assert "COUNT(DISTINCT ship.id)" in sqlgen.generate_sql(query)

    def test_count_without_join_is_star(self, sqlgen):
        query = LogicalQuery(target=ship_entity(), aggregate=Aggregate("count"))
        assert "COUNT(*)" in sqlgen.generate_sql(query)

    def test_superlative_order_limit(self, sqlgen):
        query = LogicalQuery(
            target=ship_entity(),
            superlative=Superlative(AttrRef("ship", "speed"), "max", 2),
        )
        sql = sqlgen.generate_sql(query)
        assert "ORDER BY ship.speed DESC" in sql and "LIMIT 2" in sql

    def test_compare_to_instance_nested(self, sqlgen):
        query = LogicalQuery(
            target=ship_entity(),
            conditions=(
                CompareToInstance(
                    AttrRef("ship", "displacement"), ">",
                    ValueRef("ship", "name", "Enterprise"),
                ),
            ),
        )
        sql = sqlgen.generate_sql(query)
        assert sql.count("SELECT") == 2

    def test_cross_table_instance_joins_in_subquery(self, sqlgen, fleet_db):
        # "ships heavier than halsey's ship": instance names an officer
        query = LogicalQuery(
            target=ship_entity(),
            conditions=(
                CompareToInstance(
                    AttrRef("ship", "displacement"), ">",
                    ValueRef("officer", "name", "Halsey"),
                ),
            ),
        )
        result = self.run(sqlgen, fleet_db, query)
        assert result.columns == ["name"]

    def test_negated_compare_wrapped(self, sqlgen):
        query = LogicalQuery(
            target=ship_entity(),
            conditions=(
                CompareCondition(AttrRef("ship", "speed"), ">", 30, negated=True),
            ),
        )
        assert "NOT" in sqlgen.generate_sql(query)

    def test_group_by_with_order(self, sqlgen, fleet_db):
        query = LogicalQuery(
            target=ship_entity(),
            aggregate=Aggregate("avg", AttrRef("ship", "crew")),
            group_by=AttrRef("fleet", "name"),
        )
        result = self.run(sqlgen, fleet_db, query)
        assert len(result) == 4
        names = result.column("name")
        assert names == sorted(names)

    def test_order_spec(self, sqlgen):
        query = LogicalQuery(
            target=ship_entity(),
            order_by=OrderSpec(AttrRef("ship", "length"), descending=True),
        )
        assert "ORDER BY ship.length DESC" in sqlgen.generate_sql(query)


class TestDialogueAlgebra:
    def previous(self):
        return LogicalQuery(
            target=ship_entity(),
            aggregate=Aggregate("count"),
            conditions=(ValueCondition(ValueRef("fleet", "name", "Pacific")),),
        )

    def test_condition_column_keys(self):
        cond = ValueCondition(ValueRef("fleet", "name", "Pacific"))
        assert condition_column(cond) == ("fleet", "name")
        comp = CompareCondition(AttrRef("ship", "speed"), ">", 30)
        assert condition_column(comp) == ("ship", "speed")

    def test_same_column_replaces(self):
        fragment = Sketch(
            fragment=True,
            conditions=(ValueCondition(ValueRef("fleet", "name", "Atlantic")),),
        )
        merged = merge_fragment(self.previous(), fragment)
        assert len(merged.conditions) == 1
        assert merged.conditions[0].value.value == "Atlantic"
        assert merged.penalty < 0  # replacement bonus

    def test_new_column_appends(self):
        fragment = Sketch(
            fragment=True,
            conditions=(CompareCondition(AttrRef("ship", "speed"), ">", 30),),
        )
        merged = merge_fragment(self.previous(), fragment)
        assert len(merged.conditions) == 2

    def test_aggregate_inherited(self):
        fragment = Sketch(
            fragment=True,
            conditions=(ValueCondition(ValueRef("fleet", "name", "Atlantic")),),
        )
        merged = merge_fragment(self.previous(), fragment)
        assert merged.agg_function == "count"

    def test_entity_switch_penalised(self):
        fragment = Sketch(fragment=True, entity=EntityRef("officer"))
        merged = merge_fragment(self.previous(), fragment)
        assert merged.entity.table == "officer"
        assert merged.penalty > 0

    def test_session_without_history_rejects_fragment(self):
        session = Session()
        with pytest.raises(DialogueError):
            session.resolve_fragment(Sketch(fragment=True))

    def test_session_pronoun_resolution(self):
        session = Session()
        session.remember("q", self.previous(), "p")
        sketch = session.resolve_pronoun_sketch(
            Sketch(conditions=(CompareCondition(AttrRef("ship", "speed"), ">", 30),))
        )
        assert sketch.entity.table == "ship"
        assert len(sketch.conditions) == 2


class TestCli:
    def run_cli(self, lines, *args):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(args) or ["fleet"], stdin=io.StringIO(lines), stdout=out)
        return code, out.getvalue()

    def test_question_and_quit(self):
        code, output = self.run_cli("how many ships are there\n\\q\n")
        assert code == 0
        assert "counting the ships" in output
        assert "60" in output

    def test_sql_command(self):
        _, output = self.run_cli("\\sql SELECT COUNT(*) FROM fleet\n\\q\n")
        assert "4" in output

    def test_schema_command(self):
        _, output = self.run_cli("\\schema\n\\q\n")
        assert "ship(" in output

    def test_reset_and_error_handling(self):
        _, output = self.run_cli("\\reset\nxyzzy gibberish quux\n\\q\n")
        assert "context cleared" in output
        assert "Sorry" in output

    def test_explain_command(self):
        _, output = self.run_cli("\\explain show the carriers\n\\q\n")
        assert "sql:" in output
