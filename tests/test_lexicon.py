"""Tests for the lexicon: entries, store, auto-builder and domain model."""

import pytest

from repro.datasets import fleet
from repro.errors import LexiconError
from repro.lexicon import (
    AttributeSpec,
    Category,
    DomainModel,
    EntitySpec,
    Lexicon,
    build_lexicon,
    phrase_key,
)
from repro.lexicon.entries import CategoricalEntity
from repro.logical.forms import AttrRef, EntityRef


@pytest.fixture(scope="module")
def fleet_db():
    return fleet.build_database()


@pytest.fixture(scope="module")
def lexicon(fleet_db):
    return build_lexicon(fleet_db, fleet.domain())


class TestPhraseKey:
    def test_lowercase_and_stem(self):
        assert phrase_key("Ships") == ("ship",)

    def test_underscores_split(self):
        assert phrase_key("home_port") == ("home", "port")

    def test_multiword(self):
        assert phrase_key("crew size") == ("crew", "size")


class TestLexiconStore:
    def test_add_and_lookup(self):
        lex = Lexicon()
        ref = EntityRef("ship")
        lex.add("vessel", Category.ENTITY, ref)
        assert lex.lookup(("vessel",))[0].payload == ref

    def test_stemmed_lookup(self):
        lex = Lexicon()
        lex.add("carrier", Category.ENTITY, EntityRef("ship"))
        matches = lex.prefix_matches(["carrier"], 0)
        assert matches

    def test_duplicate_entries_deduped(self):
        lex = Lexicon()
        ref = EntityRef("ship")
        lex.add("boat", Category.ENTITY, ref)
        lex.add("boat", Category.ENTITY, ref)
        assert len(lex.lookup(("boat",))) == 1

    def test_same_phrase_different_payloads_kept(self):
        lex = Lexicon()
        lex.add("name", Category.ATTR, AttrRef("ship", "name"))
        lex.add("name", Category.ATTR, AttrRef("fleet", "name"))
        assert len(lex.lookup(("name",))) == 2

    def test_prefix_longest_first(self):
        lex = Lexicon()
        lex.add("crew", Category.ATTR, AttrRef("ship", "crew"))
        lex.add("crew size", Category.ATTR, AttrRef("ship", "crew"))
        matches = lex.prefix_matches(["crew", "size"], 0)
        assert matches[0][0] == 2

    def test_empty_phrase_rejected(self):
        lex = Lexicon()
        with pytest.raises(ValueError):
            lex.add("   ", Category.ENTITY, EntityRef("x"))

    def test_knows_word_includes_plural(self):
        lex = Lexicon()
        lex.add("ship", Category.ENTITY, EntityRef("ship"))
        assert lex.knows_word("ship")
        # plural added to the correction vocabulary
        assert lex.correct_word("shps") == "ships"


class TestBuilder:
    def test_catalog_tables_become_entities(self, lexicon):
        entries = lexicon.lookup(phrase_key("ship"))
        assert any(e.category is Category.ENTITY for e in entries)

    def test_catalog_columns_become_attrs(self, lexicon):
        entries = lexicon.lookup(phrase_key("displacement"))
        assert any(e.category is Category.ATTR for e in entries)

    def test_underscore_columns_split(self, lexicon):
        entries = lexicon.lookup(phrase_key("home port id"))
        assert any(
            e.category is Category.ATTR and e.payload.column == "home_port_id"
            for e in entries
        )

    def test_domain_synonyms(self, lexicon):
        entries = lexicon.lookup(phrase_key("vessel"))
        assert any(e.payload == EntityRef("ship", phrase="vessel") for e in entries)

    def test_adjectives_superlative(self, lexicon):
        entries = lexicon.lookup(phrase_key("heaviest"))
        assert any(
            e.category is Category.SUPER and e.payload[1] == "max" for e in entries
        )

    def test_adjectives_comparative(self, lexicon):
        entries = lexicon.lookup(phrase_key("lighter"))
        assert any(
            e.category is Category.COMP and e.payload[1] == "<" for e in entries
        )

    def test_units(self, lexicon):
        entries = lexicon.lookup(phrase_key("tons"))
        assert any(
            e.category is Category.UNIT and e.payload.column == "displacement"
            for e in entries
        )

    def test_value_synonyms(self, lexicon):
        entries = lexicon.lookup(phrase_key("flattop"))
        assert any(
            e.category is Category.VALUE and e.payload.value == "carrier"
            for e in entries
        )

    def test_categorical_entities_enumerated(self, lexicon):
        entries = lexicon.lookup(phrase_key("submarine"))
        categorical = [
            e for e in entries if isinstance(e.payload, CategoricalEntity)
        ]
        assert categorical
        assert categorical[0].payload.entity.table == "ship"

    def test_synonym_fraction_zero_keeps_catalog(self, fleet_db):
        bare = build_lexicon(fleet_db, fleet.domain(), synonym_fraction=0.0)
        assert bare.lookup(phrase_key("ship"))  # catalog name survives
        assert not bare.lookup(phrase_key("vessel"))  # synonym dropped

    def test_synonym_fraction_monotone(self, fleet_db):
        sizes = [
            len(build_lexicon(fleet_db, fleet.domain(), synonym_fraction=f))
            for f in (0.0, 0.5, 1.0)
        ]
        assert sizes[0] < sizes[1] <= sizes[2]

    def test_category_counts(self, lexicon):
        counts = lexicon.category_counts()
        assert counts["ENTITY"] > 5
        assert counts["ATTR"] > 10
        assert counts["SUPER"] >= 8


class TestDomainValidation:
    def test_unknown_table_rejected(self, fleet_db):
        model = DomainModel("bad", entities=[EntitySpec("ghost", ("g",))])
        with pytest.raises(LexiconError):
            model.validate(fleet_db)

    def test_unknown_column_rejected(self, fleet_db):
        model = DomainModel(
            "bad", attributes=[AttributeSpec("ship", "ghost", ("g",))]
        )
        with pytest.raises(LexiconError):
            model.validate(fleet_db)

    def test_unknown_display_column_rejected(self, fleet_db):
        model = DomainModel(
            "bad", entities=[EntitySpec("ship", ("ship",), ("ghost",))]
        )
        with pytest.raises(LexiconError):
            model.validate(fleet_db)

    def test_all_bundled_domains_valid(self):
        from repro.datasets import company, geography

        fleet.domain().validate(fleet.build_database())
        company.domain().validate(company.build_database())
        geography.domain().validate(geography.build_database())

    def test_display_columns_for(self):
        model = fleet.domain()
        assert model.display_columns_for("ship") == ("name",)
        assert model.display_columns_for("unknown") == ()
