"""MVCC snapshot reads: COW isolation, cache stamping, pin hygiene.

The contract under test (see docs/concurrency.md):

* a snapshot pinned before a commit keeps seeing the pre-commit rows;
  a snapshot pinned after it sees the new ones;
* plan-cache/result-cache entries are stamped with the versions of the
  source they were computed against, so a cached answer is never served
  across versions — in either direction;
* pins do not leak: dropping a snapshot mid-scan (a dead reader) releases
  its storage pins as soon as the object is collected;
* bulk UPDATE/DELETE statements coalesce into one TableDelta each.
"""

from __future__ import annotations

import gc
import threading

import pytest

from repro.core.config import NliConfig
from repro.core.pipeline import NaturalLanguageInterface
from repro.datasets import fleet
from repro.errors import ExecutionError
from repro.service.service import NliService
from repro.sqlengine import Database, Engine
from repro.sqlengine.table import TableDelta


def _item_engine(rows: int = 50) -> Engine:
    engine = Engine(Database())
    engine.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, flag INT)"
    )
    for i in range(rows):
        engine.execute(f"INSERT INTO items VALUES ({i}, 'name{i}', 0)")
    return engine


class TestTableSnapshotCow:
    def test_snapshot_pins_pre_commit_state(self):
        engine = _item_engine()
        db = engine.database
        snap = db.snapshot()
        engine.execute("UPDATE items SET flag = 1")
        engine.execute("INSERT INTO items VALUES (50, 'fresh', 1)")
        engine.execute("DELETE FROM items WHERE id = 0")
        # The pinned view is frozen at capture...
        view = snap.table("items")
        assert len(view) == 50
        assert all(row[2] == 0 for row in view.rows())
        assert view.row_by_id(0) is not None
        # ...while the live table moved on.
        live = db.table("items")
        assert len(live) == 50  # 50 - 1 deleted + 1 inserted
        assert all(row[2] == 1 for row in live.rows())
        assert live.row_by_id(0) is None
        snap.close()

    def test_snapshot_statistics_and_indexes_are_frozen(self):
        engine = _item_engine()
        db = engine.database
        db.table("items").create_hash_index("flag")
        snap = db.snapshot()
        stats_before = snap.table("items").statistics
        engine.execute("UPDATE items SET flag = 7")
        view = snap.table("items")
        assert view.statistics is stats_before
        assert view.statistics.column("flag").frequency(0) == 50
        assert db.table("items").statistics.column("flag").frequency(7) == 50
        # Index lookups on the snapshot resolve against the old values.
        assert len(view.hash_index("flag").lookup(0)) == 50
        assert view.hash_index("flag").lookup(7) == []
        snap.close()

    def test_write_without_pins_does_not_clone(self):
        engine = _item_engine()
        table = engine.database.table("items")
        rows_before = table._rows
        engine.execute("UPDATE items SET flag = 2")
        assert table._rows is rows_before  # mutated in place, no COW

    def test_first_write_after_pin_clones_once(self):
        engine = _item_engine()
        db = engine.database
        table = db.table("items")
        shared = table._rows
        with db.snapshot() as snap:
            engine.execute("UPDATE items SET flag = 1")
            detached = table._rows
            assert detached is not shared  # COW detach for the pin
            engine.execute("UPDATE items SET flag = 2")
            assert table._rows is detached  # no second clone
            assert snap.table("items")._rows is shared

    def test_snapshot_version_stamps_are_capture_time(self):
        engine = _item_engine()
        db = engine.database
        snap = db.snapshot()
        pinned = snap.table_version("items")
        assert pinned == db.table_version("items")
        engine.execute("UPDATE items SET flag = 3")
        assert snap.table_version("items") == pinned
        assert db.table_version("items") > pinned
        assert snap.table_versions() == {"items": pinned}
        snap.close()


class TestStatementAtomicity:
    def test_snapshot_is_one_cut_across_tables(self):
        """A capture can never mix commit N of one table with commit N+1
        of another: the whole capture is atomic against writers.

        The writer always inserts the `items` row *before* its matching
        `other` row, so every inter-statement point of the database
        satisfies ``len(items) >= len(other)``.  A capture that
        interleaved with the writer table-by-table could pin `items`
        early and `other` late and observe the invariant broken."""
        engine = _item_engine(0)
        db = engine.database
        engine.execute("CREATE TABLE other (id INT PRIMARY KEY, note TEXT)")
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            try:
                for i in range(150):
                    engine.execute(f"INSERT INTO items VALUES ({i}, 'x', 0)")
                    engine.execute(f"INSERT INTO other VALUES ({i}, 'y')")
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                stop.set()

        def pinner() -> None:
            try:
                while not stop.is_set():
                    with db.snapshot() as snap:
                        items = len(snap.table("items"))
                        other = len(snap.table("other"))
                        assert items >= other, (
                            f"mixed-commit cut: items={items} other={other}"
                        )
                        assert items - other <= 1
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=pinner)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

    def test_multi_row_insert_is_statement_atomic(self):
        """Concurrent snapshots land before or after a multi-row INSERT,
        never between its rows."""
        engine = _item_engine(0)
        db = engine.database
        stop = threading.Event()
        errors: list[BaseException] = []

        def pinner() -> None:
            try:
                while not stop.is_set():
                    with db.snapshot() as snap:
                        seen = len(snap.table("items"))
                        assert seen % 3 == 0, f"mid-statement pin: {seen} rows"
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        thread = threading.Thread(target=pinner)
        thread.start()
        try:
            for i in range(40):
                base = i * 3
                engine.execute(
                    "INSERT INTO items VALUES "
                    f"({base}, 'a', 0), ({base + 1}, 'b', 0), "
                    f"({base + 2}, 'c', 0)"
                )
        finally:
            stop.set()
            thread.join()
        assert not errors, errors
        assert len(db.table("items")) == 120

    def test_rejected_fk_insert_is_never_pinnable(self):
        """FKs are validated *before* the row enters the table, so no
        snapshot window exists in which the rejected row is visible."""
        from repro.errors import IntegrityError
        from repro.sqlengine.schema import Column, ForeignKey, TableSchema
        from repro.sqlengine.types import SqlType

        db = Database()
        db.create_table(
            TableSchema(
                "parent",
                [Column("id", SqlType.INT, nullable=False)],
                primary_key="id",
            )
        )
        db.create_table(
            TableSchema(
                "child",
                [
                    Column("id", SqlType.INT, nullable=False),
                    Column("parent_id", SqlType.INT),
                ],
                primary_key="id",
                foreign_keys=[ForeignKey("parent_id", "parent", "id")],
            )
        )
        db.insert("parent", [1])
        child = db.table("child")
        version_before = child.version
        with pytest.raises(IntegrityError):
            db.insert("child", [1, 42])  # no parent 42
        # The rejected row never touched the table: no version bump, no
        # delta, nothing a concurrent snapshot could have pinned.
        assert child.version == version_before
        assert len(child) == 0
        # Self-referencing first row still allowed (matches its own key).
        db.create_table(
            TableSchema(
                "node",
                [
                    Column("id", SqlType.INT, nullable=False),
                    Column("parent_id", SqlType.INT),
                ],
                primary_key="id",
                foreign_keys=[ForeignKey("parent_id", "node", "id")],
            )
        )
        assert db.insert("node", [7, 7]) == 0

    def test_snapshot_pins_safe_during_concurrent_ddl(self):
        engine = _item_engine(5)
        db = engine.database
        stop = threading.Event()
        errors: list[BaseException] = []

        def ddl_churn() -> None:
            try:
                for i in range(50):
                    engine.execute(
                        f"CREATE TABLE churn{i} (id INT PRIMARY KEY)"
                    )
                    db.drop_table(f"churn{i}")
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                stop.set()

        def stats_reader() -> None:
            try:
                while not stop.is_set():
                    assert db.snapshot_pins >= 0
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=ddl_churn),
            threading.Thread(target=stats_reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors


class TestEngineSnapshotReads:
    SQL = "SELECT COUNT(*) AS c, SUM(flag) AS s FROM items"

    def test_pinned_select_ignores_later_commits(self):
        engine = _item_engine()
        db = engine.database
        snap = db.snapshot()
        assert engine.execute(self.SQL, snapshot=snap).rows == [(50, 0)]
        engine.execute("UPDATE items SET flag = 1")
        # The pinned reader still sees version 0; a fresh snapshot and the
        # live path both see version 1.
        assert engine.execute(self.SQL, snapshot=snap).rows == [(50, 0)]
        assert engine.execute(self.SQL).rows == [(50, 50)]
        with db.snapshot() as fresh:
            assert engine.execute(self.SQL, snapshot=fresh).rows == [(50, 50)]
        snap.close()

    def test_result_cache_never_crosses_versions(self):
        engine = _item_engine()
        db = engine.database
        old = db.snapshot()
        # Warm the cache against the *live* (newer) state first...
        engine.execute("UPDATE items SET flag = 1")
        assert engine.execute(self.SQL).rows == [(50, 50)]
        # ...then run the same text against the old snapshot: the cached
        # result's stamps don't match the snapshot versions, so it must
        # recompute the old answer instead of serving the new rows.
        assert engine.execute(self.SQL, snapshot=old).rows == [(50, 0)]
        # And the old-stamped store must not poison the live path either.
        assert engine.execute(self.SQL).rows == [(50, 50)]
        old.close()

    def test_subqueries_read_the_pinned_snapshot(self):
        engine = _item_engine()
        db = engine.database
        snap = db.snapshot()
        engine.execute("UPDATE items SET flag = 1")
        sql = "SELECT COUNT(*) AS c FROM items WHERE flag = (SELECT MIN(flag) FROM items)"
        # Both outer query and subquery must see the snapshot: MIN(flag)=0
        # there, and all 50 rows match it.
        assert engine.execute(sql, snapshot=snap).scalar() == 50
        snap.close()

    def test_snapshot_execution_rejects_dml(self):
        engine = _item_engine()
        with engine.database.snapshot() as snap:
            with pytest.raises(ExecutionError):
                engine.execute("DELETE FROM items", snapshot=snap)


class TestSnapshotPinHygiene:
    def test_close_is_idempotent_and_releases(self):
        engine = _item_engine()
        db = engine.database
        snap = db.snapshot()
        assert db.snapshot_pins == 1
        snap.close()
        snap.close()
        assert snap.closed
        assert db.snapshot_pins == 0

    def test_dead_reader_mid_scan_leaks_no_pin(self):
        engine = _item_engine()
        db = engine.database

        def doomed_reader() -> None:
            try:
                snap = db.snapshot()
                rows = snap.table("items").rows()
                next(rows)  # mid-scan...
                raise RuntimeError("reader dies without closing the snapshot")
            except RuntimeError:
                pass  # the thread dies; its frame (and the pin) goes away

        thread = threading.Thread(target=doomed_reader, daemon=True)
        thread.start()
        thread.join()
        gc.collect()
        assert db.snapshot_pins == 0
        # The next write must not pay a stale-pin clone.
        table = db.table("items")
        rows_before = table._rows
        engine.execute("UPDATE items SET flag = 9")
        assert table._rows is rows_before

    def test_detached_pin_release_is_noop(self):
        engine = _item_engine()
        db = engine.database
        table = db.table("items")
        snap = db.snapshot()
        engine.execute("UPDATE items SET flag = 1")  # COW detach consumed the pin
        assert db.snapshot_pins == 0
        snap.close()  # releasing the stale-generation pin must not go negative
        assert table._pinned == 0
        with db.snapshot():
            assert db.snapshot_pins == 1
        assert db.snapshot_pins == 0


class TestDeltaCoalescing:
    def _tracked_engine(self, rows: int = 200):
        engine = _item_engine(rows)
        deltas: list[TableDelta] = []
        engine.database.add_delta_listener(deltas.append)
        return engine, deltas

    def test_bulk_update_emits_one_delta(self):
        engine, deltas = self._tracked_engine()
        engine.execute("UPDATE items SET name = 'renamed', flag = 1")
        assert len(deltas) == 1
        assert len(deltas[0].removed) == 200
        assert deltas[0].added == (("name", "renamed"),) * 200

    def test_bulk_delete_emits_one_delta(self):
        engine, deltas = self._tracked_engine()
        engine.execute("DELETE FROM items WHERE flag = 0")
        assert len(deltas) == 1
        assert len(deltas[0].removed) == 200
        assert deltas[0].added == ()
        assert len(engine.database.table("items")) == 0

    def test_bulk_delete_bumps_version_once(self):
        engine, _ = self._tracked_engine()
        version_before = engine.database.table_version("items")
        engine.execute("DELETE FROM items")
        assert engine.database.table_version("items") == version_before + 1

    def test_coalesced_delete_keeps_value_index_exact(self):
        database = fleet.build_database()
        nli = NaturalLanguageInterface(database, domain=fleet.domain())
        assert nli.ask("how many ships are there").ok
        assert any(h.table == "port" for h in nli.value_index.lookup(["norfolk"]))
        before = nli.stats["deltas_applied"]
        rows = len(database.table("port"))
        assert rows > 1
        nli.engine.execute("DELETE FROM port")
        nli.refresh_if_needed()
        # The whole multi-row DELETE arrived as ONE coalesced delta, and
        # the batched removal drained every per-row refcount exactly.
        assert nli.stats["deltas_applied"] == before + 1
        assert not any(
            h.table == "port" for h in nli.value_index.lookup(["norfolk"])
        )


class TestLayerPublishing:
    def test_delta_refresh_publishes_cloned_layers_in_publish_mode(self):
        database = fleet.build_database()
        nli = NaturalLanguageInterface(database, domain=fleet.domain())
        nli.copy_on_refresh = True
        assert nli.ask("how many ships are there").ok
        old_layers = nli.layers
        old_index = old_layers.value_index
        nli.engine.execute("DELETE FROM port")
        nli.refresh_if_needed()
        # A new bundle was published with a patched clone; the bundle a
        # concurrent reader pinned is untouched (old value still indexed).
        assert nli.layers is not old_layers
        assert nli.layers.epoch == old_layers.epoch + 1
        assert nli.value_index is not old_index
        assert any(h.table == "port" for h in old_index.lookup(["norfolk"]))
        assert not any(
            h.table == "port" for h in nli.value_index.lookup(["norfolk"])
        )

    def test_in_place_refresh_keeps_index_identity_by_default(self):
        database = fleet.build_database()
        nli = NaturalLanguageInterface(database, domain=fleet.domain())
        assert nli.ask("how many ships are there").ok
        index = nli.value_index
        nli.engine.execute(
            "INSERT INTO ship VALUES (900, 'Patched', 3, 1, 1, 1, "
            "8000, 600, 30, 1976, 150)"
        )
        nli.refresh_if_needed()
        assert nli.value_index is index  # single-threaded: patch in place

    def test_prepared_cache_keys_carry_the_layers_epoch(self):
        database = fleet.build_database()
        nli = NaturalLanguageInterface(database, domain=fleet.domain())
        question = "how many ships are there"
        assert nli.ask(question).ok
        epoch = nli.layers.epoch
        key = ("parse", question, True, nli.config.max_parses, epoch)
        assert key in nli._prepared
        nli.engine.execute(
            "INSERT INTO ship VALUES (901, 'Epoch', 3, 1, 1, 1, "
            "8000, 600, 30, 1976, 150)"
        )
        assert nli.ask(question).ok  # absorbs the delta, bumps the epoch
        assert nli.layers.epoch == epoch + 1
        assert key not in nli._prepared
        assert (
            "parse", question, True, nli.config.max_parses, epoch + 1
        ) in nli._prepared


class TestServiceMvccReads:
    def test_reader_pinned_before_commit_sees_old_rows(self):
        service = NliService(fleet.build_database(), domain=fleet.domain())
        ships = service.execute("SELECT COUNT(*) AS c FROM ship").scalar()
        snap = service.database.snapshot()
        service.execute(
            "INSERT INTO ship VALUES (950, 'Commit', 3, 1, 1, 1, "
            "8000, 600, 30, 1976, 150)"
        )
        pinned = service.nli.engine.execute(
            "SELECT COUNT(*) AS c FROM ship", snapshot=snap
        )
        assert pinned.scalar() == ships
        assert (
            service.execute("SELECT COUNT(*) AS c FROM ship").scalar()
            == ships + 1
        )
        snap.close()

    def test_writer_commit_absorbs_its_own_deltas(self):
        service = NliService(fleet.build_database(), domain=fleet.domain())
        service.ask("how many ships are there")
        service.execute(
            "INSERT INTO ship VALUES (951, 'Absorbed', 3, 1, 1, 1, "
            "8000, 600, 30, 1976, 150)"
        )
        # The commit point already refreshed: no pending deltas remain for
        # a reader to absorb, so asks stay lock-free.
        assert not service.nli.needs_refresh()
        assert service.nli.stats["delta_refreshes"] >= 1

    def test_no_torn_reads_while_writer_flips_generations(self):
        """Every concurrent SELECT sees exactly one writer generation."""
        service = NliService(fleet.build_database(), domain=fleet.domain())
        service.execute("UPDATE ship SET commissioned = 0")
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer() -> None:
            try:
                for generation in range(1, 30):
                    service.execute(f"UPDATE ship SET commissioned = {generation}")
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                stop.set()

        def reader() -> None:
            try:
                while not stop.is_set():
                    distinct = service.execute(
                        "SELECT COUNT(DISTINCT commissioned) AS gens FROM ship"
                    ).scalar()
                    assert distinct == 1, f"torn read: {distinct} generations"
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert service.database.snapshot_pins == 0

    def test_reader_overlap_still_observable(self):
        service = NliService(fleet.build_database(), domain=fleet.domain())
        service.ask("how many ships are there")
        barrier = threading.Barrier(3)

        def asker() -> None:
            barrier.wait()
            for _ in range(5):
                assert service.ask("how many ships are there").ok

        threads = [threading.Thread(target=asker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats
        assert stats["lock_read_acquires"] >= 15
        assert stats["snapshot_pins"] == 0

    def test_legacy_rwlock_mode_still_works(self):
        service = NliService(
            fleet.build_database(),
            domain=fleet.domain(),
            config=NliConfig(mvcc_reads=False),
        )
        assert service.ask("how many ships are there").ok
        service.execute(
            "INSERT INTO ship VALUES (952, 'Legacy', 3, 1, 1, 1, "
            "8000, 600, 30, 1976, 150)"
        )
        response = service.ask("how many ships are there")
        assert response.ok
        # Legacy readers really hold the RW lock (no MVCC gauge entries).
        assert service._lock.stats["read_acquires"] >= 2
        assert not service.nli.copy_on_refresh
