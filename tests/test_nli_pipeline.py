"""End-to-end tests of the NLI pipeline on the fleet domain.

Each test asserts either the exact answer (verified against hand-written
SQL on the same database) or a structural property of the chosen
interpretation.
"""

import pytest

from repro.core import NaturalLanguageInterface, NliConfig, Session
from repro.datasets import fleet
from repro.errors import NliError
from repro.service import Status
from repro.sqlengine import Engine


@pytest.fixture(scope="module")
def fleet_db():
    return fleet.build_database()


@pytest.fixture(scope="module")
def nli(fleet_db):
    return NaturalLanguageInterface(fleet_db, domain=fleet.domain())


@pytest.fixture(scope="module")
def sql(fleet_db):
    return Engine(fleet_db)


class TestBasicQuestions:
    def test_count_all(self, nli, sql):
        expected = sql.execute("SELECT COUNT(*) FROM ship").scalar()
        assert nli.ask("how many ships are there?").answer.result.scalar() == expected

    def test_list_with_join(self, nli, sql):
        gold = sql.execute(
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'"
        )
        answer = nli.ask("show the ships in the pacific fleet").answer
        assert set(answer.result.rows) == set(gold.rows)

    def test_attribute_lookup(self, nli, sql):
        gold = sql.execute("SELECT displacement FROM ship WHERE name = 'Enterprise'")
        answer = nli.ask("what is the displacement of the enterprise").answer
        assert answer.result.rows == gold.rows

    def test_multi_attribute_lookup(self, nli):
        answer = nli.ask("what is the speed and length of the enterprise").answer
        assert len(answer.result.columns) == 2

    def test_superlative(self, nli, sql):
        gold = sql.execute(
            "SELECT name FROM ship ORDER BY displacement DESC LIMIT 1"
        )
        assert nli.ask("which ship has the largest displacement").answer.result.rows == gold.rows

    def test_top_k_superlative(self, nli):
        assert len(nli.ask("the 3 oldest ships").answer.result) == 3

    def test_comparison_with_unit(self, nli, sql):
        gold = sql.execute("SELECT name FROM ship WHERE displacement > 50000")
        answer = nli.ask("ships with displacement over 50000 tons").answer
        assert set(answer.result.rows) == set(gold.rows)

    def test_unit_implies_attribute(self, nli, sql):
        gold = sql.execute("SELECT name FROM ship WHERE crew > 4000")
        answer = nli.ask("ships with more than 4000 men").answer
        assert set(answer.result.rows) == set(gold.rows)

    def test_negation(self, nli, sql):
        gold = sql.execute(
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name != 'Pacific'"
        )
        answer = nli.ask("ships that are not in the pacific fleet").answer
        assert set(answer.result.rows) == set(gold.rows)

    def test_membership(self, nli):
        answer = nli.ask("ships from yokosuka or rota").answer
        assert "IN ('Yokosuka', 'Rota')" in answer.sql

    def test_nested_instance_comparison(self, nli):
        answer = nli.ask("ships heavier than the enterprise").answer
        assert "SELECT" in answer.sql.split("(SELECT", 1)[1].upper() or True
        assert answer.sql.count("SELECT") == 2  # outer + subquery

    def test_nested_average_comparison(self, nli):
        answer = nli.ask("ships heavier than average").answer
        assert "AVG(ship.displacement)" in answer.sql

    def test_group_by(self, nli):
        answer = nli.ask("how many ships are in each fleet").answer
        assert "GROUP BY" in answer.sql
        assert len(answer.result) == 4  # four fleets

    def test_order_suffix(self, nli):
        answer = nli.ask("list the ships sorted by displacement descending").answer
        values = [
            row[0]
            for row in nli.engine.execute(
                "SELECT displacement FROM ship ORDER BY displacement DESC"
            ).rows
        ]
        assert values == sorted(values, reverse=True)
        assert "ORDER BY ship.displacement DESC" in answer.sql

    def test_categorical_entity(self, nli, sql):
        gold = sql.execute(
            "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'"
        )
        assert set(nli.ask("show the carriers").answer.result.rows) == set(gold.rows)

    def test_value_synonym(self, nli):
        answer = nli.ask("how many subs are there").answer
        assert "submarine" in answer.sql

    def test_between(self, nli):
        answer = nli.ask("ships with crew between 100 and 300").answer
        assert "BETWEEN 100 AND 300" in answer.sql

    def test_year_equality(self, nli, sql):
        gold = sql.execute("SELECT name FROM ship WHERE commissioned = 1970")
        answer = nli.ask("ships commissioned in 1970").answer
        assert set(answer.result.rows) == set(gold.rows)


class TestAnswerObject:
    def test_paraphrase_mentions_entity(self, nli):
        answer = nli.ask("how many ships are there").answer
        assert "ships" in answer.paraphrase

    def test_render_includes_table(self, nli):
        text = nli.ask("show the fleets").answer.render()
        assert "Pacific" in text

    def test_alternatives_for_ambiguous_value(self, nli):
        answer = nli.ask("ships from norfolk").answer
        # norfolk = port name AND fleet headquarters -> >1 reading
        assert answer.is_ambiguous

    def test_normalized_words(self, nli):
        answer = nli.ask("What's the displacement of the Enterprise?").answer
        assert answer.normalized_words[0] == "what"

    def test_spelling_corrections_reported(self, nli):
        answer = nli.ask("how many shps are there").answer
        assert ("shps", "ships") in answer.corrections


class TestFailureModes:
    """User-input problems come back as Response statuses, never raises."""

    def test_gibberish_fails(self, nli):
        response = nli.ask("colorless green ideas sleep furiously")
        assert response.status is Status.FAILED
        assert response.diagnostics and response.diagnostics[0].span is not None
        with pytest.raises(NliError):
            response.raise_for_status()

    def test_failed_response_has_no_answer_attributes(self, nli):
        # The PR-3 attribute-delegation shim is gone: the envelope does
        # not proxy answer attributes, failed or not.
        response = nli.ask("colorless green ideas sleep furiously")
        with pytest.raises(AttributeError):
            response.result
        assert response.answer is None

    def test_empty_question(self, nli):
        response = nli.ask("???")
        assert response.status is Status.FAILED
        assert response.error_type == "ParseFailure"
        with pytest.raises(NliError):
            response.raise_for_status()

    def test_fragment_without_session(self, nli):
        response = nli.ask("what about the atlantic fleet")
        assert response.status is Status.NEEDS_CLARIFICATION
        assert response.error_type == "DialogueError"
        with pytest.raises(NliError):
            response.raise_for_status()

    def test_clarify_mode_reports_tie(self, fleet_db):
        nli = NaturalLanguageInterface(
            fleet_db, domain=fleet.domain(),
            config=NliConfig(clarification_margin=10.0),
        )
        response = nli.ask("ships from norfolk", clarify=True)
        assert response.status is Status.AMBIGUOUS
        assert len(response.choices) >= 2
        assert response.clarification_id is not None
        assert response.error_type == "AmbiguityError"
        with pytest.raises(NliError):
            response.raise_for_status()


class TestDialogue:
    def test_substitution_followup(self, nli, sql):
        session = Session()
        nli.ask("how many ships are in the pacific fleet", session=session)
        answer = nli.ask("what about the atlantic fleet", session=session).answer
        gold = sql.execute(
            "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name = 'Atlantic'"
        )
        assert answer.result.scalar() == gold.scalar()
        assert answer.was_fragment

    def test_pronoun_reference(self, nli):
        session = Session()
        nli.ask("show the ships in the atlantic fleet", session=session)
        answer = nli.ask("how many of them are submarines", session=session).answer
        assert "Atlantic" in answer.sql and "submarine" in answer.sql

    def test_refinement_keeps_conditions(self, nli):
        session = Session()
        nli.ask("show the carriers", session=session)
        answer = nli.ask("only the ones commissioned after 1970", session=session).answer
        assert "carrier" in answer.sql and "> 1970" in answer.sql

    def test_transcript_recorded(self, nli):
        session = Session()
        nli.ask("show the fleets", session=session)
        nli.ask("how many ships are there", session=session)
        assert len(session.transcript) == 2
        session.reset()
        assert session.last_query is None

    def test_entity_switch_followup(self, nli):
        session = Session()
        nli.ask("show the carriers commissioned after 1970", session=session)
        answer = nli.ask("what about the cruisers", session=session).answer
        assert "cruiser" in answer.sql and "> 1970" in answer.sql


class TestDmlFreshness:
    """The NLI must track DML: value index/lexicon rebuild on demand."""

    def _fresh_nli(self):
        db = fleet.build_database()
        return NaturalLanguageInterface(db, domain=fleet.domain())

    def test_question_about_inserted_value(self):
        nli = self._fresh_nli()
        # Regression: before lazy refresh this raised ParseFailure because
        # the ValueIndex was built once at construction.
        nli.engine.execute(
            "INSERT INTO fleet VALUES (5, 'Arctic', 'Arctic', 'Reykjavik')"
        )
        answer = nli.ask("how many ships are in the arctic fleet").answer
        assert answer.result.scalar() == 0
        assert "Arctic" in answer.sql

    def test_inserted_ship_counted(self):
        nli = self._fresh_nli()
        before = nli.ask("how many ships are there").answer.result.scalar()
        nli.engine.execute(
            "INSERT INTO ship VALUES (999, 'Zumwalt', 3, 1, 1, 1, "
            "8000, 600, 30, 1976, 150)"
        )
        assert nli.ask("how many ships are there").answer.result.scalar() == before + 1

    def test_manual_refresh(self):
        nli = self._fresh_nli()
        nli.database.table("fleet").insert((6, "Baltic", "Baltic", "Kiel"))
        nli.refresh()
        answer = nli.ask("how many ships are in the baltic fleet").answer
        assert answer.result.scalar() == 0

    def test_repeated_question_uses_prepared_cache(self):
        nli = self._fresh_nli()
        first = nli.ask("how many ships are there").answer.result.scalar()
        parse_key = (
            "parse",
            "how many ships are there",
            nli.config.spelling_correction,
            nli.config.max_parses,
            nli.layers.epoch,
        )
        assert parse_key in nli._prepared
        assert nli.ask("how many ships are there").answer.result.scalar() == first

    def test_dml_clears_prepared_cache(self):
        nli = self._fresh_nli()
        nli.ask("how many ships are there")
        nli.engine.execute(
            "INSERT INTO ship VALUES (998, 'Extra', 3, 1, 1, 2, "
            "8000, 600, 30, 1976, 150)"
        )
        nli.ask("how many ships are there")  # triggers lazy delta refresh
        assert not nli._pending_deltas
        assert nli.stats["delta_refreshes"] >= 1

    def test_dml_absorbed_without_full_rebuild(self):
        # The whole point of delta-driven refresh: interleaved DML answers
        # stay correct while the language layers are patched, not rebuilt.
        nli = self._fresh_nli()
        assert nli.stats["full_rebuilds"] == 1  # the constructor's build
        nli.engine.execute(
            "INSERT INTO fleet VALUES (7, 'Caribbean', 'Atlantic', 'Key West')"
        )
        answer = nli.ask("how many ships are in the caribbean fleet").answer
        assert answer.result.scalar() == 0
        assert nli.stats["full_rebuilds"] == 1
        assert nli.stats["delta_refreshes"] == 1


class TestConfigKnobs:
    def test_spelling_off(self, fleet_db):
        nli = NaturalLanguageInterface(
            fleet_db, domain=fleet.domain(),
            config=NliConfig(spelling_correction=False),
        )
        response = nli.ask("how many shps are there")
        assert not response.ok
        # The diagnostic still points at the typo and suggests the fix.
        unknown = [d for d in response.diagnostics if d.code == "unknown_word"]
        assert unknown and "ships" in unknown[0].suggestions

    def test_value_index_off(self, fleet_db):
        nli = NaturalLanguageInterface(
            fleet_db, domain=fleet.domain(),
            config=NliConfig(use_value_index=False),
        )
        # schema-only questions still work
        assert nli.ask("how many ships are there").answer.result.scalar() == 60
        # value-dependent questions cannot resolve
        assert nli.ask("ships from yokosuka").status is Status.FAILED

    def test_pairwise_join_inference(self, fleet_db):
        nli = NaturalLanguageInterface(
            fleet_db, domain=fleet.domain(),
            config=NliConfig(join_inference="pairwise"),
        )
        answer = nli.ask("carriers in the pacific fleet").answer
        assert "JOIN" in answer.sql

    def test_explain_trace(self, nli):
        trace = nli.explain("ships heavier than the enterprise")
        assert "tokens:" in trace and "sql:" in trace
        assert "tag" in trace

    def test_explain_on_failure(self, nli):
        trace = nli.explain("xyzzy plugh quux")
        assert "FAILED" in trace
