"""Unit tests for the NLP front end."""

import pytest

from repro.nlp import (
    SpellingCorrector,
    damerau_levenshtein,
    parse_number_words,
    parse_numeral,
    parse_ordinal,
    stem,
    stem_phrase,
    strip_stopwords,
    tokenize,
)


class TestTokenizer:
    def test_basic_words(self):
        assert tokenize("show all ships").words == ["show", "all", "ships"]

    def test_lowercasing(self):
        assert tokenize("Pacific FLEET").words == ["pacific", "fleet"]

    def test_question_mark_detected(self):
        t = tokenize("how many ships?")
        assert t.had_question_mark
        assert "?" not in " ".join(t.words)

    def test_contraction_whats(self):
        assert tokenize("what's the name").words == ["what", "is", "the", "name"]

    def test_contraction_negation(self):
        assert tokenize("which ships weren't deployed").words == [
            "which",
            "ships",
            "were",
            "not",
            "deployed",
        ]

    def test_possessive_stripped(self):
        assert tokenize("the ship's captain").words == ["the", "ship", "captain"]

    def test_abbreviation_periods(self):
        assert tokenize("the U.S. fleet").words == ["the", "us", "fleet"]

    def test_numbers_with_commas(self):
        t = tokenize("over 1,250 tons")
        assert t.words == ["over", "1250", "tons"]
        assert t.tokens[1].is_number

    def test_decimal_number(self):
        t = tokenize("costs 2.5 million")
        assert t.words == ["costs", "2.5", "million"]

    def test_hyphenated_word_kept_whole(self):
        assert tokenize("anti-submarine ships").words == ["anti-submarine", "ships"]

    def test_offsets_point_into_raw(self):
        raw = "list big ships"
        t = tokenize(raw)
        for token in t.tokens:
            assert raw[token.start:token.end].lower().startswith(token.text[:2])

    def test_empty_input(self):
        assert tokenize("").words == []

    def test_punctuation_only(self):
        assert tokenize("?!.,").words == []


class TestStemmer:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("ships", "ship"),
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("hopping", "hop"),
            ("falling", "fall"),
            ("happy", "happi"),
            ("relational", "relat"),
            ("rational", "ration"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("adjustable", "adjust"),
            ("probate", "probat"),
            ("cease", "ceas"),
            ("controller", "control"),
        ],
    )
    def test_known_porter_vectors(self, word, expected):
        assert stem(word) == expected

    def test_short_words_unchanged(self):
        assert stem("at") == "at"
        assert stem("go") == "go"

    def test_non_alpha_unchanged(self):
        assert stem("1200") == "1200"
        assert stem("anti-sub") == "anti-sub"

    def test_stem_phrase(self):
        assert stem_phrase("Listed Securities") == "list secur"

    def test_idempotent_on_common_nouns(self):
        for word in ["ship", "fleet", "officer", "captain", "port"]:
            assert stem(stem(word)) == stem(word)


class TestEditDistance:
    def test_identity(self):
        assert damerau_levenshtein("abc", "abc") == 0

    def test_classic(self):
        assert damerau_levenshtein("kitten", "sitting") == 3

    def test_transposition_counts_one(self):
        assert damerau_levenshtein("ship", "sihp") == 1

    def test_insert_delete(self):
        assert damerau_levenshtein("fleet", "fleets") == 1
        assert damerau_levenshtein("fleets", "fleet") == 1

    def test_empty(self):
        assert damerau_levenshtein("", "abc") == 3
        assert damerau_levenshtein("abc", "") == 3

    def test_cap_short_circuits(self):
        assert damerau_levenshtein("aaaaaaaa", "bbbbbbbb", cap=2) > 2


class TestSpellingCorrector:
    def make(self):
        sc = SpellingCorrector()
        sc.add_words(["ship", "fleet", "carrier", "pacific", "atlantic"], weight=1)
        sc.add_word("ship", weight=10)  # boosts frequency
        return sc

    def test_known_word_distance_zero(self):
        assert self.make().correct("fleet").distance == 0

    def test_simple_typo(self):
        assert self.make().correct("pacfic").corrected == "pacific"

    def test_transposition(self):
        assert self.make().correct("sihp").corrected == "ship"

    def test_too_far_returns_none(self):
        assert self.make().correct("zzzzzz") is None

    def test_short_words_not_corrected(self):
        sc = self.make()
        assert sc.correct("shp") is None  # length 3 -> threshold 0

    def test_case_insensitive(self):
        assert self.make().correct("PACIFIC").distance == 0

    def test_weight_breaks_ties(self):
        sc = SpellingCorrector()
        sc.add_word("bolt", weight=1)
        sc.add_word("boat", weight=50)
        assert sc.correct("bost").corrected == "boat"

    def test_deterministic_alpha_tie_break(self):
        sc = SpellingCorrector()
        sc.add_word("cart", weight=1)
        sc.add_word("card", weight=1)
        assert sc.correct("carx").corrected == "card"

    def test_contains_and_len(self):
        sc = self.make()
        assert "ship" in sc
        assert "zeppelin" not in sc
        assert len(sc) == 5


class TestNumbers:
    def test_parse_numeral(self):
        assert parse_numeral("42") == 42
        assert parse_numeral("1,200") == 1200
        assert parse_numeral("2.5") == 2.5
        assert parse_numeral("x") is None

    def test_units(self):
        assert parse_number_words(["five"]) == (5, 1)

    def test_tens_units(self):
        assert parse_number_words(["twenty", "three"]) == (23, 2)

    def test_scales(self):
        assert parse_number_words(["three", "hundred"]) == (300, 2)
        assert parse_number_words(["two", "thousand"]) == (2000, 2)

    def test_article_scale(self):
        assert parse_number_words(["a", "hundred"]) == (100, 2)

    def test_article_alone_is_not_a_number(self):
        assert parse_number_words(["a", "ship"]) is None

    def test_numeral_with_scale(self):
        assert parse_number_words(["3", "thousand"]) == (3000, 2)

    def test_stops_at_non_number(self):
        assert parse_number_words(["seven", "ships"]) == (7, 1)

    def test_no_number(self):
        assert parse_number_words(["ships"]) is None
        assert parse_number_words([]) is None

    def test_ordinals(self):
        assert parse_ordinal("third") == 3
        assert parse_ordinal("3rd") == 3
        assert parse_ordinal("21st") == 21
        assert parse_ordinal("ship") is None


class TestStopwords:
    def test_strip(self):
        assert strip_stopwords(["show", "the", "ships", "in", "norfolk"]) == [
            "ships",
            "norfolk",
        ]

    def test_keeps_content_words(self):
        assert strip_stopwords(["pacific", "fleet"]) == ["pacific", "fleet"]
