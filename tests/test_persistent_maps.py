"""Persistent maps and the clone-free ValueIndex publish path.

Three layers under test:

* :class:`repro.valueindex.pmap.PMap` — the HAMT itself, differentially
  fuzzed against ``dict`` and probed on hash collisions;
* :class:`~repro.valueindex.ValueIndex` in persistent mode — identical
  lookup behaviour, O(1) clones, structural sharing across a publish
  (checked by *object identity sampling*: untouched buckets in the
  patched clone must be the very same objects the pinned reader holds),
  and occurrence refcounts that survive clone-free publishes;
* the pipeline's publish mode (``enable_copy_on_refresh``) — a delta
  refresh swaps in a new bundle whose index shares all untouched
  structure with the one concurrent readers still hold.
"""

from __future__ import annotations

import random

import pytest

from repro.core import NaturalLanguageInterface
from repro.datasets import fleet
from repro.nlp.spelling import SpellingCorrector
from repro.sqlengine.table import TableDelta
from repro.valueindex import ValueIndex
from repro.valueindex.pmap import PMap


class TestPMap:
    def test_empty(self):
        m = PMap()
        assert len(m) == 0
        assert m.get("x") is None
        assert "x" not in m
        assert list(m.items()) == []
        with pytest.raises(KeyError):
            m["x"]

    def test_set_get_delete(self):
        m = PMap().set("a", 1).set("b", 2)
        assert m["a"] == 1 and m["b"] == 2 and len(m) == 2
        m2 = m.delete("a")
        assert "a" not in m2 and m2["b"] == 2 and len(m2) == 1
        # the original is untouched — that is the whole point
        assert m["a"] == 1 and len(m) == 2

    def test_overwrite_keeps_count(self):
        m = PMap().set("k", 1).set("k", 2)
        assert len(m) == 1 and m["k"] == 2

    def test_delete_missing_returns_self(self):
        m = PMap().set("a", 1)
        assert m.delete("zzz") is m
        assert PMap().delete("zzz") is not None

    def test_differential_fuzz_against_dict(self):
        rng = random.Random(7)
        m, d = PMap(), {}
        for _ in range(8000):
            op, key = rng.random(), rng.randrange(800)
            if op < 0.55:
                value = rng.randrange(1000)
                m, d[key] = m.set(key, value), value
            elif op < 0.85:
                m = m.delete(key)
                d.pop(key, None)
            else:
                assert m.get(key, "absent") == d.get(key, "absent")
        assert len(m) == len(d)
        assert dict(m.items()) == d
        assert sorted(m.keys()) == sorted(d.keys())
        assert sorted(m.values()) == sorted(d.values())

    def test_full_hash_collisions(self):
        class Collider:
            def __init__(self, name):
                self.name = name

            def __hash__(self):  # all instances collide at full depth
                return 42

            def __eq__(self, other):
                return isinstance(other, Collider) and other.name == self.name

        a, b, c = Collider("a"), Collider("b"), Collider("c")
        m = PMap().set(a, 1).set(b, 2).set(c, 3)
        assert len(m) == 3 and m[a] == 1 and m[b] == 2 and m[c] == 3
        m = m.delete(b)
        assert len(m) == 2 and b not in m and m[a] == 1 and m[c] == 3
        m = m.delete(a).delete(c)
        assert len(m) == 0

    def test_structural_sharing_on_update(self):
        base = PMap.from_dict({i: (i,) for i in range(2000)})
        updated = base.set(17, (17, 17))
        shared = sum(1 for k in range(2000) if updated.get(k) is base.get(k))
        # One key changed: every other bucket object is aliased, not copied.
        assert shared == 1999
        assert base.get(17) == (17,) and updated.get(17) == (17, 17)


def _sample_index() -> ValueIndex:
    return ValueIndex(fleet.build_database(seed=7, ships=300))


class TestValueIndexPersistentMode:
    def test_conversion_preserves_lookups(self):
        dict_mode = _sample_index()
        persistent = _sample_index()
        persistent.to_persistent()
        probes = [["pacific"], ["norfolk"], ["colossus"], ["nosuchword"]]
        for words in probes:
            assert persistent.lookup(words) == dict_mode.lookup(words)
            assert persistent.lookup_prefix(words) == dict_mode.lookup_prefix(words)
        assert persistent.stats() == dict_mode.stats()
        assert persistent.fuzzy_word("pacifc") == dict_mode.fuzzy_word("pacifc")

    def test_to_persistent_idempotent(self):
        index = _sample_index()
        index.to_persistent()
        phrase_map = index._phrase_map
        index.to_persistent()
        assert index._phrase_map is phrase_map

    def test_clone_aliases_maps(self):
        index = _sample_index()
        index.to_persistent()
        clone = index.clone()
        # O(1) publish: the clone holds the same map objects by reference.
        assert clone._phrase_map is index._phrase_map
        assert clone._stem_map is index._stem_map
        assert clone._occurrences is index._occurrences
        assert clone._column_seen is index._column_seen

    def test_publish_after_dml_shares_structure(self):
        """Object identity sampling across a publish.

        Patch a clone with a delta (the publish path) and verify every
        bucket the delta did not touch is the *same object* in both the
        old and new index — structural sharing, not a deep copy.
        """
        index = _sample_index()
        index.to_persistent()
        clone = index.clone()
        clone.apply_delta(
            TableDelta("ship", added=(("name", "Zephyr Queen"),))
        )
        assert clone.lookup(["zephyr", "queen"]) != []
        assert index.lookup(["zephyr", "queen"]) == []
        touched = {("zephyr", "queen")}
        shared = different = 0
        for key, bucket in index._phrase_map.items():
            if key in touched:
                continue
            if clone._phrase_map.get(key) is bucket:
                shared += 1
            else:
                different += 1
        assert different == 0, "untouched phrase buckets were copied"
        assert shared > 100  # the fleet corpus indexes hundreds of phrases

    def test_refcounts_survive_clone_free_publish(self):
        """Occurrence refcounts stay correct across chained O(1) publishes."""
        index = _sample_index()
        index.to_persistent()
        # Two live rows hold the same value...
        gen1 = index.clone()
        gen1.apply_delta(TableDelta("ship", added=(("name", "Twinsburg"),)))
        gen2 = gen1.clone()
        gen2.apply_delta(TableDelta("ship", added=(("name", "Twinsburg"),)))
        assert gen2._occurrences.get(("ship", "name", "Twinsburg")) == 2
        # ...removing one occurrence keeps the phrase indexed...
        gen3 = gen2.clone()
        gen3.apply_delta(TableDelta("ship", removed=(("name", "Twinsburg"),)))
        assert gen3.lookup(["twinsburg"]) != []
        assert gen3._occurrences.get(("ship", "name", "Twinsburg")) == 1
        # ...and removing the last unindexes it, on that generation only.
        gen4 = gen3.clone()
        gen4.apply_delta(TableDelta("ship", removed=(("name", "Twinsburg"),)))
        assert gen4.lookup(["twinsburg"]) == []
        assert gen4._occurrences.get(("ship", "name", "Twinsburg")) is None
        # Pinned generations never moved.
        assert gen3.lookup(["twinsburg"]) != []
        assert gen2._occurrences.get(("ship", "name", "Twinsburg")) == 2
        assert gen1._occurrences.get(("ship", "name", "Twinsburg")) == 1
        assert index.lookup(["twinsburg"]) == []

    def test_cap_enforced_in_persistent_mode(self):
        index = ValueIndex(
            fleet.build_database(seed=7, ships=50), max_values_per_column=3
        )
        index.to_persistent()
        rejected = index.add_value("ship", "name", "Brand New Value")
        assert rejected is False
        assert index.lookup(["brand", "new", "value"]) == []


class TestSpellingCorrectorPersistentMode:
    def test_parity_with_dict_mode(self):
        dict_mode, persistent = SpellingCorrector(), SpellingCorrector()
        for corrector in (dict_mode, persistent):
            corrector.add_words(["harbor", "harbour", "frigate", "frigates"])
            corrector.add_word("frigate")  # weight tie-break material
        persistent.to_persistent()
        for word in ["harbr", "frigate", "frigat", "xyzzy"]:
            assert persistent.correct(word) == dict_mode.correct(word)
        assert len(persistent) == len(dict_mode)
        assert ("harbor" in persistent) == ("harbor" in dict_mode)

    def test_clone_is_reference_copy(self):
        corrector = SpellingCorrector()
        corrector.add_words(["alpha", "beta"])
        corrector.to_persistent()
        clone = corrector.clone()
        assert clone._vocabulary is corrector._vocabulary
        assert clone._by_length is corrector._by_length
        clone.add_word("gamma")
        assert "gamma" in clone and "gamma" not in corrector

    def test_remove_word_drops_empty_buckets(self):
        corrector = SpellingCorrector()
        corrector.add_word("lonely")
        corrector.to_persistent()
        corrector.remove_word("lonely")
        assert "lonely" not in corrector
        assert len(corrector._by_length) == 0


class TestPipelinePublishMode:
    def test_enable_converts_live_index(self):
        nli = NaturalLanguageInterface(
            fleet.build_database(seed=7, ships=200), domain=fleet.domain()
        )
        assert not nli.value_index._persistent
        nli.enable_copy_on_refresh()
        assert nli.copy_on_refresh
        assert nli.value_index._persistent

    def test_delta_refresh_publishes_shared_structure(self):
        nli = NaturalLanguageInterface(
            fleet.build_database(seed=7, ships=200), domain=fleet.domain()
        )
        nli.enable_copy_on_refresh()
        old_layers = nli.layers
        old_index = old_layers.value_index
        nli.engine.execute(
            "INSERT INTO ship VALUES (900001, 'Starfall Wanderer', "
            "3, 1, 1, 1, 8000, 600, 30, 1976, 150)"
        )
        nli.refresh()
        new_index = nli.layers.value_index
        assert nli.layers is not old_layers
        assert new_index is not old_index
        assert nli.stats["delta_refreshes"] == 1
        assert nli.stats["full_rebuilds"] == 1  # construction only
        # The pinned reader's bundle never saw the new phrase...
        assert old_index.lookup(["starfall", "wanderer"]) == []
        assert new_index.lookup(["starfall", "wanderer"]) != []
        # ...and the published index aliases every untouched bucket.
        copied = [
            key
            for key, bucket in old_index._phrase_map.items()
            if new_index._phrase_map.get(key) is not bucket
        ]
        assert copied == []

    def test_full_rebuild_stays_persistent(self):
        nli = NaturalLanguageInterface(
            fleet.build_database(seed=7, ships=50), domain=fleet.domain()
        )
        nli.enable_copy_on_refresh()
        nli.refresh(full=True)
        assert nli.value_index._persistent
