"""Property-based tests for the SQL engine's relational invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine import Column, Database, Engine, SqlType, TableSchema

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-1000, max_value=1000),
        st.sampled_from(["red", "green", "blue", None]),
    ),
    min_size=0,
    max_size=30,
)


def make_engine(rows):
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [Column("id", SqlType.INT, nullable=False),
             Column("v", SqlType.INT), Column("tag", SqlType.TEXT)],
            primary_key="id",
        )
    )
    for i, (v, tag) in enumerate(rows):
        db.insert("t", (i, v, tag))
    return Engine(db)


class TestRelationalInvariants:
    @given(rows_strategy)
    @settings(max_examples=40)
    def test_count_matches_row_count(self, rows):
        engine = make_engine(rows)
        assert engine.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)

    @given(rows_strategy)
    @settings(max_examples=40)
    def test_selection_partitions_rows(self, rows):
        engine = make_engine(rows)
        positive = engine.execute("SELECT COUNT(*) FROM t WHERE v > 0").scalar()
        non_positive = engine.execute("SELECT COUNT(*) FROM t WHERE v <= 0").scalar()
        nulls = engine.execute("SELECT COUNT(*) FROM t WHERE v IS NULL").scalar()
        assert positive + non_positive + nulls == len(rows)

    @given(rows_strategy)
    @settings(max_examples=40)
    def test_distinct_is_set_semantics(self, rows):
        engine = make_engine(rows)
        distinct = engine.execute("SELECT DISTINCT tag FROM t").rows
        assert len(distinct) == len(set(distinct))
        assert {r[0] for r in distinct} == {tag for _, tag in rows}

    @given(rows_strategy)
    @settings(max_examples=40)
    def test_order_by_sorts(self, rows):
        engine = make_engine(rows)
        ordered = engine.execute(
            "SELECT v FROM t WHERE v IS NOT NULL ORDER BY v"
        ).column("v")
        assert ordered == sorted(ordered)

    @given(rows_strategy)
    @settings(max_examples=40)
    def test_sum_matches_python(self, rows):
        engine = make_engine(rows)
        values = [v for v, _ in rows if v is not None]
        got = engine.execute("SELECT SUM(v) FROM t").scalar()
        assert got == (sum(values) if values else None)

    @given(rows_strategy)
    @settings(max_examples=40)
    def test_group_counts_sum_to_total(self, rows):
        engine = make_engine(rows)
        groups = engine.execute(
            "SELECT tag, COUNT(*) FROM t GROUP BY tag"
        ).rows
        assert sum(n for _, n in groups) == len(rows)

    @given(rows_strategy, st.integers(min_value=0, max_value=10))
    @settings(max_examples=40)
    def test_limit_bounds_output(self, rows, limit):
        engine = make_engine(rows)
        got = engine.execute(f"SELECT id FROM t LIMIT {limit}")
        assert len(got) == min(limit, len(rows))

    @given(rows_strategy)
    @settings(max_examples=30)
    def test_self_join_on_pk_is_identity(self, rows):
        engine = make_engine(rows)
        joined = engine.execute(
            "SELECT COUNT(*) FROM t a JOIN t b ON a.id = b.id"
        ).scalar()
        assert joined == len(rows)

    @given(rows_strategy)
    @settings(max_examples=30)
    def test_optimizer_equivalence_random_data(self, rows):
        db_engine = make_engine(rows)
        naive = Engine(db_engine.database, use_optimizer=False)
        for sql in (
            "SELECT id FROM t WHERE v > 10 AND tag = 'red'",
            "SELECT a.id FROM t a, t b WHERE a.id = b.id AND b.v < 0",
            "SELECT tag, COUNT(*) FROM t GROUP BY tag",
        ):
            fast = db_engine.execute(sql)
            slow = naive.execute(sql)
            assert sorted(map(repr, fast.rows)) == sorted(map(repr, slow.rows))

    @given(rows_strategy)
    @settings(max_examples=30)
    def test_delete_then_count(self, rows):
        engine = make_engine(rows)
        removed = engine.execute("DELETE FROM t WHERE v > 0").scalar()
        remaining = engine.execute("SELECT COUNT(*) FROM t").scalar()
        assert removed + remaining == len(rows)

    @given(rows_strategy)
    @settings(max_examples=30)
    def test_render_roundtrip_executes_identically(self, rows):
        from repro.sqlengine.parser import parse_select

        engine = make_engine(rows)
        sql = "SELECT tag, COUNT(*) AS n FROM t WHERE v IS NOT NULL GROUP BY tag ORDER BY n DESC"
        select = parse_select(sql)
        rendered = select.render()
        assert engine.execute(sql).rows == engine.execute(rendered).rows
