"""Property-based tests (hypothesis) for the NLP substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import damerau_levenshtein, stem, tokenize
from repro.nlp.spelling import SpellingCorrector
from repro.nlp.tokenizer import _CONTRACTIONS

words = st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=12)


class TestEditDistanceProperties:
    @given(words, words)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    @given(words)
    def test_identity(self, a):
        assert damerau_levenshtein(a, a) == 0

    @given(words, words)
    def test_bounded_by_longer_length(self, a, b):
        assert damerau_levenshtein(a, b) <= max(len(a), len(b))

    @given(words, words)
    def test_lower_bound_length_difference(self, a, b):
        assert damerau_levenshtein(a, b) >= abs(len(a) - len(b))

    @given(words, words, words)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert damerau_levenshtein(a, c) <= (
            damerau_levenshtein(a, b) + damerau_levenshtein(b, c)
        )

    @given(words, st.integers(min_value=0, max_value=3))
    def test_single_deletion_is_distance_one(self, a, pos):
        if not a:
            return
        pos = pos % len(a)
        deleted = a[:pos] + a[pos + 1 :]
        assert damerau_levenshtein(a, deleted) == 1


class TestStemmerProperties:
    @given(words)
    def test_never_longer(self, word):
        assert len(stem(word)) <= max(len(word), 2)

    @given(words)
    def test_output_stable_type(self, word):
        assert isinstance(stem(word), str)

    @given(st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=10))
    def test_plural_s_joins_singular(self, word):
        # A regular plural must stem to the same thing as its singular,
        # unless the word already ends with 's' (sses/ss special cases) or
        # 'ie' (Porter's "ies"->"i" rule leaves the bare singular alone:
        # dies->di but die->die, a known quirk of the 1980 algorithm).
        if word.endswith("s") or word.endswith("ie"):
            return
        assert stem(word + "s") == stem(word)


class TestTokenizerProperties:
    @given(st.text(max_size=60))
    def test_never_crashes_and_lowercases(self, text):
        result = tokenize(text)
        for token in result.tokens:
            assert token.text == token.text.lower()
            assert 0 <= token.start <= token.end <= len(text)

    @given(
        st.lists(
            words.filter(lambda w: w and w not in _CONTRACTIONS),
            min_size=1,
            max_size=6,
        )
    )
    def test_space_joined_words_roundtrip(self, parts):
        text = " ".join(parts)
        tokens = tokenize(text).words
        # Contractions/possessives aside, plain ascii words pass through.
        assert tokens == [p for p in parts]


class TestSpellingProperties:
    @given(st.lists(words.filter(lambda w: len(w) >= 4), min_size=1, max_size=8))
    def test_vocabulary_words_are_fixed_points(self, vocabulary):
        sc = SpellingCorrector()
        sc.add_words(vocabulary)
        for word in vocabulary:
            correction = sc.correct(word)
            assert correction is not None
            assert correction.corrected == word
            assert correction.distance == 0

    @given(
        st.lists(words.filter(lambda w: len(w) >= 6), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=4),
    )
    def test_corrections_stay_within_threshold(self, vocabulary, seed):
        sc = SpellingCorrector()
        sc.add_words(vocabulary)
        target = vocabulary[seed % len(vocabulary)]
        corrupted = target[1:]  # one deletion
        correction = sc.correct(corrupted)
        if correction is not None:
            assert damerau_levenshtein(correction.corrected, corrupted) <= 2
