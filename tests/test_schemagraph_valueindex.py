"""Tests for the schema graph, Steiner join inference and the value index."""

import pytest

from repro.datasets import fleet
from repro.errors import InterpretationError
from repro.schemagraph import (
    SchemaGraph,
    pairwise_join_paths,
    steiner_join_tree,
    tables_in_tree,
)
from repro.valueindex import ValueIndex

from tests.conftest import make_library_db


@pytest.fixture(scope="module")
def fleet_db():
    return fleet.build_database()


@pytest.fixture(scope="module")
def fleet_graph(fleet_db):
    return SchemaGraph(fleet_db)


class TestSchemaGraph:
    def test_tables_listed(self, fleet_graph):
        assert "ship" in fleet_graph.tables
        assert "fleet" in fleet_graph.tables

    def test_neighbors_via_fk(self, fleet_graph):
        targets = {edge.to_table for edge in fleet_graph.neighbors("ship")}
        assert {"fleet", "port", "officer", "shiptype", "deployment"} <= targets

    def test_edges_bidirectional(self, fleet_graph):
        from_fleet = {edge.to_table for edge in fleet_graph.neighbors("fleet")}
        assert "ship" in from_fleet

    def test_shortest_path_direct(self, fleet_graph):
        path = fleet_graph.shortest_path("ship", "fleet")
        assert len(path) == 1
        assert path[0].describe() == "ship.fleet_id = fleet.id"

    def test_shortest_path_two_hops(self, fleet_graph):
        path = fleet_graph.shortest_path("fleet", "shiptype")
        assert len(path) == 2
        assert path[0].to_table == "ship" or path[0].from_table == "ship" or True
        assert tables_in_tree(path, {"fleet", "shiptype"}) == [
            "fleet", "ship", "shiptype",
        ]

    def test_same_table_path_empty(self, fleet_graph):
        assert fleet_graph.shortest_path("ship", "ship") == []

    def test_unknown_table_raises(self, fleet_graph):
        with pytest.raises(InterpretationError):
            fleet_graph.shortest_path("ship", "nonexistent")

    def test_disconnected_tables_raise(self):
        db = make_library_db()
        from repro.sqlengine import Column, SqlType, TableSchema

        db.create_table(TableSchema("island", [Column("id", SqlType.INT)]))
        graph = SchemaGraph(db)
        with pytest.raises(InterpretationError):
            graph.shortest_path("author", "island")
        assert not graph.connected("author", "island")

    def test_distance(self, fleet_graph):
        assert fleet_graph.distance("ship", "fleet") == 1
        assert fleet_graph.distance("fleet", "shiptype") == 2


class TestSteiner:
    def test_single_terminal_no_edges(self, fleet_graph):
        assert steiner_join_tree(fleet_graph, {"ship"}) == []

    def test_two_terminals(self, fleet_graph):
        edges = steiner_join_tree(fleet_graph, {"ship", "fleet"})
        assert len(edges) == 1

    def test_three_terminals_star(self, fleet_graph):
        edges = steiner_join_tree(fleet_graph, {"fleet", "shiptype", "port"})
        tables = tables_in_tree(edges, {"fleet", "shiptype", "port"})
        # ship is the Steiner point connecting all three
        assert "ship" in tables
        assert len(edges) == 3

    def test_deterministic(self, fleet_graph):
        a = steiner_join_tree(fleet_graph, {"officer", "fleet", "deployment"})
        b = steiner_join_tree(fleet_graph, {"deployment", "fleet", "officer"})
        assert a == b

    def test_pairwise_agrees_on_star(self, fleet_graph):
        terminals = {"fleet", "shiptype", "port"}
        steiner = steiner_join_tree(fleet_graph, terminals)
        pairwise = pairwise_join_paths(fleet_graph, terminals)
        assert tables_in_tree(steiner, terminals) == tables_in_tree(pairwise, terminals)

    def test_no_duplicate_edges(self, fleet_graph):
        edges = steiner_join_tree(
            fleet_graph, {"fleet", "shiptype", "port", "officer", "deployment"}
        )
        keys = {(e.from_table, e.from_column, e.to_table, e.to_column) for e in edges}
        assert len(keys) == len(edges)

    def test_unknown_terminal_raises(self, fleet_graph):
        with pytest.raises(InterpretationError):
            steiner_join_tree(fleet_graph, {"ship", "ghost"})


class TestValueIndex:
    @pytest.fixture(scope="class")
    def index(self, fleet_db):
        return ValueIndex(fleet_db)

    def test_single_word_value(self, index):
        hits = index.lookup(["norfolk"])
        assert any(h.table == "port" and h.column == "name" for h in hits)

    def test_multiword_value(self, index):
        hits = index.lookup(["pearl", "harbor"])
        assert any(h.value == "Pearl Harbor" for h in hits)

    def test_case_insensitive(self, index):
        assert index.lookup(["NORFOLK"])

    def test_value_in_multiple_columns(self, index):
        hits = index.lookup(["pacific"])
        columns = {(h.table, h.column) for h in hits}
        assert ("fleet", "name") in columns
        assert len(columns) >= 2  # also ocean columns

    def test_prefix_prefers_longest(self, index):
        matches = index.lookup_prefix(["pearl", "harbor", "ships"])
        assert matches[0][0] == 2  # two-token match first

    def test_stemmed_fallback(self, index):
        hits = index.lookup(["admirals"])
        assert any(h.value == "admiral" and not h.exact for h in hits)

    def test_exact_beats_stemmed(self, index):
        hits = index.lookup(["admiral"])
        assert hits[0].exact

    def test_fuzzy_word(self, index):
        assert index.fuzzy_word("norflk") == "norfolk"
        assert index.fuzzy_word("norfolk") is None  # already known
        assert index.fuzzy_word("zzzzzz") is None

    def test_contains_word(self, index):
        assert index.contains_word("norfolk")
        assert not index.contains_word("pasta")

    def test_numbers_not_indexed(self, index):
        # INT columns are not in the value index (only TEXT)
        assert index.lookup(["3675"]) == []

    def test_stats(self, index):
        stats = index.stats()
        assert stats["phrases"] > 50
        assert stats["max_phrase_len"] >= 2

    def test_max_values_cap(self, fleet_db):
        capped = ValueIndex(fleet_db, max_values_per_column=2)
        assert capped.stats()["phrases"] < ValueIndex(fleet_db).stats()["phrases"]
