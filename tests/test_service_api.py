"""Service-layer API: Response envelope, clarification protocol, batching.

Acceptance for the redesign: ``ask()`` never raises for user-input
problems, every failure carries a diagnostic with a token span, the
envelope JSON round-trips exactly, an AMBIGUOUS response resolves via
``resolve()`` and shapes the next follow-up in the same Session, and the
prepared-question cache honours its TTL knob.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.baselines import KeywordBaseline, TemplateBaseline
from repro.core import NaturalLanguageInterface, NliConfig, Session
from repro.datasets import fleet, load_bundle
from repro.errors import ClarificationError
from repro.service import Choice, Diagnostic, NliService, Response, Status
from repro.sqlengine.plancache import LruCache


@pytest.fixture(scope="module")
def fleet_db():
    return fleet.build_database()


@pytest.fixture(scope="module")
def nli(fleet_db):
    return NaturalLanguageInterface(fleet_db, domain=fleet.domain())


def roundtrip(response: Response) -> dict:
    """to_dict must be pure JSON: the dump/load round-trip is exact."""
    wire = response.to_dict()
    assert json.loads(json.dumps(wire)) == wire
    return wire


class TestResponseEnvelope:
    def test_answered_envelope(self, nli):
        response = nli.ask("how many ships are there")
        assert response.status is Status.ANSWERED
        assert response.ok
        assert response.answer is not None
        assert response.answer.result.scalar() == 60
        response.raise_for_status()  # no-op when answered

    def test_answered_json_roundtrip(self, nli):
        response = nli.ask("show the ships in the pacific fleet")
        wire = roundtrip(response)
        back = Response.from_dict(wire)
        assert back.status is Status.ANSWERED
        assert back.answer is not None and response.answer is not None
        assert back.answer.sql == response.answer.sql
        assert back.answer.result.rows == response.answer.result.rows
        assert back.answer.result.columns == response.answer.result.columns
        assert back.answer.paraphrase == response.answer.paraphrase

    def test_parse_failure_envelope(self, nli):
        response = nli.ask("colorless green ideas sleep furiously")
        assert response.status is Status.FAILED
        assert response.answer is None
        assert response.error_type == "ParseFailure"
        codes = [d.code for d in response.diagnostics]
        assert "parse_failure" in codes
        primary = response.diagnostics[0]
        assert primary.span == (0, len(response.tokens))
        roundtrip(response)

    def test_unknown_word_has_span_and_suggestions(self, fleet_db):
        local = NaturalLanguageInterface(
            fleet_db, domain=fleet.domain(),
            config=NliConfig(spelling_correction=False),
        )
        response = local.ask("how many shps are there")
        unknown = [d for d in response.diagnostics if d.code == "unknown_word"]
        assert unknown
        start, end = unknown[0].span
        assert response.tokens[start:end] == ("shps",)
        assert "ships" in unknown[0].suggestions

    def test_unknown_value_reports_failure_with_span(self, nli):
        response = nli.ask("ships from zanzibar")
        assert response.status is Status.FAILED
        assert any(d.span is not None for d in response.diagnostics)
        roundtrip(response)

    def test_empty_question_span(self, nli):
        response = nli.ask("???")
        assert response.status is Status.FAILED
        assert response.diagnostics[0].code == "empty_question"
        assert response.diagnostics[0].span == (0, 0)

    def test_fragment_without_context_needs_clarification(self, nli):
        response = nli.ask("what about the atlantic fleet")
        assert response.status is Status.NEEDS_CLARIFICATION
        assert response.diagnostics[0].code == "missing_context"
        roundtrip(response)

    def test_generation_phase_failure_counts_as_interpret_stage(
        self, fleet_db, monkeypatch
    ):
        # A failure after interpretation succeeded reports execution_error,
        # so evalkit stage accounting credits the interpret stage (the old
        # exception-based harness's behavior).
        from repro.errors import InterpretationError
        from repro.evalkit.harness import failure_stage

        nli = NaturalLanguageInterface(fleet_db, domain=fleet.domain())

        def boom(query):
            raise InterpretationError("join tree is not connected")

        monkeypatch.setattr(nli.sqlgen, "generate", boom)
        response = nli.ask("how many ships are in the pacific fleet")
        assert response.status is Status.FAILED
        assert response.diagnostics[0].code == "execution_error"
        assert failure_stage(response) == "interpret"

    def test_failed_roundtrip_preserves_diagnostics(self, nli):
        wire = nli.ask("colorless green ideas sleep furiously").to_dict()
        back = Response.from_dict(json.loads(json.dumps(wire)))
        assert back.status is Status.FAILED
        assert back.diagnostics and isinstance(back.diagnostics[0], Diagnostic)
        assert back.diagnostics[0].span is not None


class TestClarificationProtocol:
    def _clarifying_nli(self, fleet_db):
        return NaturalLanguageInterface(
            fleet_db, domain=fleet.domain(),
            config=NliConfig(clarification_margin=10.0),
        )

    def test_ambiguous_enumerates_choices(self, fleet_db):
        nli = self._clarifying_nli(fleet_db)
        response = nli.ask("ships from norfolk", clarify=True)
        assert response.status is Status.AMBIGUOUS
        assert len(response.choices) >= 2
        for choice in response.choices:
            assert isinstance(choice, Choice)
            assert choice.paraphrase and "SELECT" in choice.sql
        assert response.clarification_id is not None
        roundtrip(response)

    def test_resolve_executes_without_reparsing(self, fleet_db):
        nli = self._clarifying_nli(fleet_db)
        ambiguous = nli.ask("ships from norfolk", clarify=True)
        chosen = ambiguous.choices[1]
        resolved = nli.resolve(ambiguous.clarification_id, 1)
        assert resolved.status is Status.ANSWERED
        assert resolved.answer.sql == chosen.sql
        assert resolved.answer.interpretation is not None

    def test_resolution_shapes_followup_in_session(self, fleet_db):
        nli = self._clarifying_nli(fleet_db)
        session = Session()
        ambiguous = nli.ask("ships from norfolk", session=session, clarify=True)
        assert ambiguous.status is Status.AMBIGUOUS
        assert session.pending_clarification == ambiguous.clarification_id
        # Pick the fleet-headquarters reading explicitly.
        target = next(
            i for i, c in enumerate(ambiguous.choices) if "fleet" in c.sql.lower()
        )
        resolved = nli.resolve(ambiguous.clarification_id, target)
        assert resolved.ok
        assert session.pending_clarification is None
        assert session.last_query is not None
        # The follow-up merges with the *resolved* reading.
        followup = nli.ask("how many of them are submarines", session=session)
        assert followup.ok
        assert "submarine" in followup.answer.sql
        assert "Norfolk" in followup.answer.sql

    def test_clarification_is_single_use(self, fleet_db):
        nli = self._clarifying_nli(fleet_db)
        ambiguous = nli.ask("ships from norfolk", clarify=True)
        nli.resolve(ambiguous.clarification_id, 0)
        with pytest.raises(ClarificationError):
            nli.resolve(ambiguous.clarification_id, 0)

    def test_bad_choice_index_rejected(self, fleet_db):
        nli = self._clarifying_nli(fleet_db)
        ambiguous = nli.ask("ships from norfolk", clarify=True)
        with pytest.raises(ClarificationError):
            nli.resolve(ambiguous.clarification_id, 99)

    def test_bad_choice_index_leaves_clarification_pending(self, fleet_db):
        # Regression: an out-of-range pick must not consume the pending
        # clarification — the user simply picks again.
        nli = self._clarifying_nli(fleet_db)
        session = Session()
        ambiguous = nli.ask("ships from norfolk", session=session, clarify=True)
        with pytest.raises(ClarificationError):
            nli.resolve(ambiguous.clarification_id, 99)
        assert session.pending_clarification == ambiguous.clarification_id
        resolved = nli.resolve(ambiguous.clarification_id, 0)
        assert resolved.ok

    def test_unknown_id_rejected(self, nli):
        with pytest.raises(ClarificationError):
            nli.resolve("clar-does-not-exist", 0)

    def test_full_rebuild_discards_parked_clarifications(self):
        # Catalog DDL invalidates parked interpretations (they may join
        # dropped tables); the id becomes unknown rather than replaying
        # against a changed schema.
        nli = NaturalLanguageInterface(
            fleet.build_database(), domain=fleet.domain(),
            config=NliConfig(clarification_margin=10.0),
        )
        ambiguous = nli.ask("ships from norfolk", clarify=True)
        nli.engine.execute("CREATE TABLE scratch (id INT PRIMARY KEY)")
        nli.refresh()  # catalog change -> full rebuild
        with pytest.raises(ClarificationError):
            nli.resolve(ambiguous.clarification_id, 0)

    def test_resolve_replay_failure_returns_envelope(self, fleet_db, monkeypatch):
        # Replay failures keep the never-raise contract of ask().
        from repro.errors import ExecutionError

        nli = self._clarifying_nli(fleet_db)
        session = Session()
        ambiguous = nli.ask("ships from norfolk", session=session, clarify=True)

        def boom(select, snapshot=None):
            raise ExecutionError("replay failed")

        monkeypatch.setattr(nli.engine, "execute", boom)
        response = nli.resolve(ambiguous.clarification_id, 0)
        assert response.status is Status.FAILED
        assert response.diagnostics[0].code == "execution_error"
        assert session.pending_clarification is None

    def test_ambiguity_error_type_recorded(self, fleet_db):
        nli = self._clarifying_nli(fleet_db)
        response = nli.ask("ships from norfolk", clarify=True)
        assert response.error_type == "AmbiguityError"
        assert response.to_dict()["error_type"] == "AmbiguityError"


class TestAskMany:
    def test_batch_matches_sequential_answers(self, fleet_db):
        nli = NaturalLanguageInterface(fleet_db, domain=fleet.domain())
        questions = [
            "how many ships are there",
            "show the carriers",
            "how many ships are there",
            "not parseable gibberish zz",
        ]
        responses = nli.ask_many(questions)
        assert [r.status for r in responses] == [
            Status.ANSWERED, Status.ANSWERED, Status.ANSWERED, Status.FAILED,
        ]
        assert responses[0].answer.result.scalar() == responses[2].answer.result.scalar()

    def test_batch_shares_one_freshness_pass(self):
        nli = NaturalLanguageInterface(
            fleet.build_database(), domain=fleet.domain()
        )
        nli.ask("how many ships are there")
        refreshes_before = nli.stats["delta_refreshes"]
        for i in range(4):
            nli.engine.execute(
                f"INSERT INTO ship VALUES ({700 + i}, 'Batchling {i}', "
                "3, 1, 1, 1, 8000, 600, 30, 1976, 150)"
            )
        responses = nli.ask_many(["how many ships are there"] * 3)
        assert all(r.ok for r in responses)
        assert responses[0].answer.result.scalar() == 64
        assert nli.stats["delta_refreshes"] == refreshes_before + 1

    def test_auto_refresh_restored_after_batch(self, fleet_db):
        nli = NaturalLanguageInterface(fleet_db, domain=fleet.domain())
        assert nli.auto_refresh
        nli.ask_many(["how many ships are there"])
        assert nli.auto_refresh


class TestPreparedCacheTtl:
    def test_lru_ttl_evicts_and_counts(self):
        clock = [0.0]
        cache = LruCache(capacity=8, ttl_s=10.0, clock=lambda: clock[0])
        cache.put("q", "parsed")
        assert cache.get("q") == "parsed"
        clock[0] = 5.0
        assert "q" in cache
        clock[0] = 10.5
        assert cache.get("q") is None
        assert cache.stats["ttl_evictions"] == 1

    def test_no_ttl_by_default(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats["ttl_evictions"] == 0

    def test_nli_config_knob_wires_through(self, fleet_db):
        nli = NaturalLanguageInterface(
            fleet_db, domain=fleet.domain(),
            config=NliConfig(prepared_cache_ttl_s=0.001),
        )
        assert nli._prepared.ttl_s == 0.001
        nli.ask("how many ships are there")
        import time

        time.sleep(0.005)
        nli.ask("how many ships are there")  # expired -> re-prepared
        assert nli.stats["prepared_ttl_evictions"] >= 1

    def test_stats_expose_prepared_counters(self, fleet_db):
        nli = NaturalLanguageInterface(fleet_db, domain=fleet.domain())
        nli.ask("how many ships are there")
        nli.ask("how many ships are there")
        stats = nli.stats
        assert stats["prepared_hits"] >= 1
        assert stats["prepared_misses"] >= 1
        assert "prepared_ttl_evictions" in stats


class TestNliServiceFacade:
    def test_ask_and_sessions(self):
        bundle = load_bundle("fleet")
        service = NliService(bundle.database, domain=bundle.model)
        sid = service.open_session()
        first = service.ask("how many ships are in the pacific fleet", session=sid)
        assert first.ok
        followup = service.ask("what about the atlantic fleet", session=sid)
        assert followup.ok and followup.answer.was_fragment
        assert len(service.session(sid).transcript) == 2
        service.close_session(sid)
        with pytest.raises(KeyError):
            service.session(sid)

    def test_dml_through_service_is_absorbed(self):
        bundle = load_bundle("fleet")
        service = NliService(bundle.database, domain=bundle.model)
        before = service.ask("how many ships are there").answer.result.scalar()
        service.execute(
            "INSERT INTO ship VALUES (901, 'Servicing', 3, 1, 1, 1, "
            "8000, 600, 30, 1976, 150)"
        )
        assert service.ask("how many ships are there").answer.result.scalar() == before + 1
        assert service.stats["full_rebuilds"] == 1  # absorbed as a delta

    def test_select_passthrough_uses_read_lock(self):
        bundle = load_bundle("fleet")
        service = NliService(bundle.database, domain=bundle.model)
        reads_before = service.lock_stats["read_acquires"]
        writes_before = service.lock_stats["write_acquires"]
        assert service.execute("SELECT COUNT(*) FROM ship").scalar() == 60
        assert service.lock_stats["read_acquires"] == reads_before + 1
        assert service.lock_stats["write_acquires"] == writes_before

    def test_service_clarify_and_resolve(self):
        bundle = load_bundle("fleet")
        service = NliService(
            bundle.database, domain=bundle.model,
            config=NliConfig(clarification_margin=10.0),
        )
        sid = service.open_session()
        ambiguous = service.ask("ships from norfolk", session=sid, clarify=True)
        assert ambiguous.status is Status.AMBIGUOUS
        resolved = service.resolve(ambiguous.clarification_id, 0)
        assert resolved.ok
        assert resolved.answer.sql == ambiguous.choices[0].sql

    def test_service_ask_many(self):
        bundle = load_bundle("fleet")
        service = NliService(bundle.database, domain=bundle.model)
        responses = service.ask_many(
            ["how many ships are there", "show the fleets"]
        )
        assert [r.ok for r in responses] == [True, True]


class TestBaselineResponseProtocol:
    def test_keyword_baseline_speaks_response(self):
        bundle = load_bundle("fleet")
        baseline = KeywordBaseline(bundle.database, bundle.model)
        response = baseline.ask("how many ships pacific")
        assert isinstance(response, Response)
        assert response.ok and response.answer.result is not None
        roundtrip(response)

    def test_template_baseline_failure_is_envelope(self):
        bundle = load_bundle("fleet")
        baseline = TemplateBaseline(bundle.database, bundle.model)
        response = baseline.ask("verily the moon waxes gibbous")
        assert response.status is Status.FAILED
        assert response.error_type == "ParseFailure"
        assert response.diagnostics and response.diagnostics[0].span is not None
        roundtrip(response)


class TestCliJson:
    def run_cli(self, lines, *args):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(args), stdin=io.StringIO(lines), stdout=out)
        return code, out.getvalue()

    def test_json_lines_and_exit_code_answered(self):
        code, output = self.run_cli("how many ships are there\n", "fleet", "--json")
        lines = [line for line in output.splitlines() if line.strip()]
        assert len(lines) == 1
        wire = json.loads(lines[0])
        assert wire["status"] == "answered"
        assert wire["answer"]["rows"] == [[60]]
        assert code == 0

    def test_json_exit_code_failed(self):
        code, output = self.run_cli("xyzzy gibberish quux\n", "fleet", "--json")
        wire = json.loads(output.splitlines()[0])
        assert wire["status"] == "failed"
        assert wire["diagnostics"]
        assert code == 2

    def test_json_exit_code_ambiguous_then_resolve(self):
        code, output = self.run_cli(
            "ships from norfolk\n", "fleet", "--json", "--clarify"
        )
        wire = json.loads(output.splitlines()[0])
        assert wire["status"] == "ambiguous"
        assert len(wire["choices"]) >= 2
        assert code == 3
        # Resolving by number in the same stream flips the exit code to 0.
        code, output = self.run_cli(
            "ships from norfolk\n1\n", "fleet", "--json", "--clarify"
        )
        last = json.loads(output.splitlines()[-1])
        assert last["status"] == "answered"
        assert code == 0

    def test_json_bad_choice_keeps_envelope_shape_and_retries(self):
        # An out-of-range number still emits a full Response envelope (the
        # line protocol never changes shape) and the clarification stays
        # pending, so the next number succeeds.
        code, output = self.run_cli(
            "ships from norfolk\n9\n1\n", "fleet", "--json", "--clarify"
        )
        lines = [json.loads(line) for line in output.splitlines() if line.strip()]
        assert [w["status"] for w in lines] == ["ambiguous", "failed", "answered"]
        bad = lines[1]
        assert "diagnostics" in bad and "tokens" in bad and "answer" in bad
        assert bad["error_type"] == "ClarificationError"
        assert code == 0

    def test_interactive_clarification_by_number(self):
        code, output = self.run_cli(
            "ships from norfolk\n1\n\\q\n", "fleet", "--clarify"
        )
        assert "did you mean" in output
        assert "[1]" in output and "[2]" in output
        assert code == 0

    def test_interactive_mode_always_exits_zero(self):
        # Status exit codes are scoped to --json scripting; a failed last
        # question must not break shell wrappers driving the console.
        code, output = self.run_cli("xyzzy gibberish quux\n\\q\n", "fleet")
        assert "Sorry" in output
        assert code == 0
