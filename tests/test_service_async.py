"""Async face, token-bucket rate limiting, and durable sessions.

The HTTP layer's integration tests live in ``test_http_server.py``;
these exercise the service-level building blocks directly: the worker
pool behind ``ask_async``, the :class:`TokenBucket` arithmetic with a
fake clock, and the JSONL replay that makes sessions survive restarts.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import NliConfig
from repro.core.dialogue import Session
from repro.core.pipeline import CLARIFICATION_CAPACITY
from repro.datasets import fleet
from repro.errors import ClarificationError
from repro.service import RateLimiter, Response, SessionLog, Status, TokenBucket
from repro.service.service import NliService


@pytest.fixture(scope="module")
def fleet_db_args():
    return dict(seed=9, ships=50)


def _service(fleet_db_args, **config_kwargs):
    return NliService(
        fleet.build_database(**fleet_db_args),
        domain=fleet.domain(),
        config=NliConfig(**config_kwargs),
    )


class TestAsyncFace:
    def test_ask_async_returns_envelope(self, fleet_db_args):
        service = _service(fleet_db_args)
        try:
            response = asyncio.run(service.ask_async("how many ships are there"))
            assert response.status is Status.ANSWERED
            assert response.answer.result.scalar() == 50
        finally:
            service.close()

    def test_concurrent_ask_async_all_answer(self, fleet_db_args):
        service = _service(fleet_db_args)

        async def main():
            questions = ["how many ships are there", "show the carriers"] * 8
            return await asyncio.gather(
                *[service.ask_async(question) for question in questions]
            )

        try:
            responses = asyncio.run(main())
            assert all(response.ok for response in responses)
            # Every call went through the read lock on a pool thread.
            assert service.lock_stats["read_acquires"] >= len(responses)
        finally:
            service.close()

    def test_ask_many_async_and_execute_async(self, fleet_db_args):
        service = _service(fleet_db_args)

        async def main():
            responses = await service.ask_many_async(
                ["how many ships are there", "how many fleets are there"]
            )
            result = await service.execute_async("SELECT count(*) FROM ship")
            return responses, result

        try:
            responses, result = asyncio.run(main())
            assert [response.ok for response in responses] == [True, True]
            assert result.scalar() == 50
        finally:
            service.close()

    def test_resolve_async_round_trip(self, fleet_db_args):
        service = _service(fleet_db_args, clarification_margin=10.0)

        async def main():
            ambiguous = await service.ask_async(
                "ships from norfolk", clarify=True
            )
            assert ambiguous.status is Status.AMBIGUOUS
            return ambiguous, await service.resolve_async(
                ambiguous.clarification_id, 0
            )

        try:
            ambiguous, resolved = asyncio.run(main())
            assert resolved.status is Status.ANSWERED
            assert resolved.answer.sql == ambiguous.choices[0].sql
        finally:
            service.close()

    def test_worker_pool_is_bounded(self, fleet_db_args):
        service = _service(fleet_db_args, service_workers=2)
        try:
            executor = service._ensure_executor()
            assert executor._max_workers == 2
        finally:
            service.close()


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, capacity=2, now=0.0)
        assert bucket.try_acquire(0.0) == 0.0
        assert bucket.try_acquire(0.0) == 0.0
        retry_after = bucket.try_acquire(0.0)
        assert retry_after == pytest.approx(1.0)
        # Half a token refilled after 0.5s; still 0.5s short.
        assert bucket.try_acquire(0.5) == pytest.approx(0.5)
        # A full second passed: one token available again.
        assert bucket.try_acquire(1.0) == 0.0

    def test_capacity_caps_refill(self):
        bucket = TokenBucket(rate=100.0, capacity=3, now=0.0)
        for _ in range(3):
            assert bucket.try_acquire(1000.0) == 0.0  # idle refill capped at 3
        assert bucket.try_acquire(1000.0) > 0.0

    def test_batch_charges_multiple_tokens(self):
        bucket = TokenBucket(rate=1.0, capacity=10, now=0.0)
        assert bucket.try_acquire(0.0, tokens=8) == 0.0
        assert bucket.try_acquire(0.0, tokens=4) == pytest.approx(2.0)

    def test_oversized_batch_is_not_permanently_unsatisfiable(self):
        # A charge beyond the burst drains the full bucket instead of
        # demanding a token count the bucket can never hold.
        limiter = RateLimiter(rate=1.0, burst=2, clock=lambda: 0.0)
        assert limiter.check("k", tokens=5) == 0.0  # full bucket: allowed
        assert limiter.check("k") > 0.0  # ...but now completely drained

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0, now=0.0)
        # The limiter validates at construction too, so a server with
        # --qps 0 fails at startup instead of 500ing on every request.
        with pytest.raises(ValueError):
            RateLimiter(rate=0.0, burst=8)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0)


class TestRateLimiter:
    def _limiter(self, rate=1.0, burst=2):
        clock = {"now": 0.0}
        limiter = RateLimiter(rate, burst, clock=lambda: clock["now"])
        return limiter, clock

    def test_keys_are_isolated(self):
        limiter, _ = self._limiter()
        assert limiter.check("alice") == 0.0
        assert limiter.check("alice") == 0.0
        assert limiter.check("alice") > 0.0
        assert limiter.check("bob") == 0.0
        assert limiter.stats == {"allowed": 3, "limited": 1}

    def test_budget_refills_over_time(self):
        limiter, clock = self._limiter(rate=2.0, burst=2)
        limiter.check("k")
        limiter.check("k")
        assert limiter.check("k") > 0.0
        clock["now"] = 0.5  # 2/s for 0.5s = 1 token back
        assert limiter.check("k") == 0.0

    def test_idle_buckets_are_pruned(self):
        limiter, clock = self._limiter(rate=1000.0, burst=1)
        for i in range(RateLimiter.PRUNE_THRESHOLD + 1):
            limiter.check(f"key-{i}")
        clock["now"] = 10.0  # everyone refills; next check prunes
        limiter.check("fresh")
        assert len(limiter) <= 2

    def test_service_returns_rate_limited_envelope(self):
        service = NliService(
            fleet.build_database(seed=9, ships=20),
            domain=fleet.domain(),
            config=NliConfig(rate_limit_qps=0.001, rate_limit_burst=1),
        )
        try:
            sid = service.ensure_session("pushy")
            assert service.ask("how many ships are there", session=sid).ok
            limited = service.ask("how many ships are there", session=sid)
            assert limited.status is Status.FAILED
            assert limited.is_rate_limited
            assert limited.retry_after_s and limited.retry_after_s > 0
            # A batch is charged as a unit: all-or-nothing envelopes.
            batch = service.ask_many(["q one", "q two"], session=sid)
            assert all(response.is_rate_limited for response in batch)
            assert service.stats["rate_limited"] >= 2
        finally:
            service.close()


class TestSessionSerialization:
    def test_session_records_replayable_events(self, fleet_db_args):
        service = _service(fleet_db_args, clarification_margin=10.0)
        try:
            sid = service.ensure_session("events")
            service.ask("how many ships are there", session=sid)
            ambiguous = service.ask(
                "ships from norfolk", session=sid, clarify=True
            )
            service.resolve(ambiguous.clarification_id, 1)
            snapshot = service.session(sid).to_dict()
            assert json.loads(json.dumps(snapshot)) == snapshot
            assert [event["question"] for event in snapshot["events"]] == [
                "how many ships are there",
                "ships from norfolk",
            ]
            assert snapshot["events"][1]["choice"] == 1
            assert snapshot["pending_clarification"] is None
        finally:
            service.close()

    def test_pending_clarification_snapshot(self, fleet_db_args):
        service = _service(fleet_db_args, clarification_margin=10.0)
        try:
            sid = service.ensure_session("pending")
            ambiguous = service.ask(
                "ships from norfolk", session=sid, clarify=True
            )
            snapshot = service.session(sid).to_dict()
            assert snapshot["pending_question"] == "ships from norfolk"
            assert (
                snapshot["pending_clarification"] == ambiguous.clarification_id
            )
        finally:
            service.close()

    def test_reset_clears_replay_state(self):
        session = Session()
        session.events.append({"question": "q", "clarify": False, "choice": None})
        session.pending_question = "q2"
        session.reset()
        assert session.events == []
        assert session.pending_question is None


class TestParkedBookkeeping:
    def test_abandoned_parks_are_bounded(self, fleet_db_args):
        service = _service(fleet_db_args, clarification_margin=10.0)
        try:
            for i in range(CLARIFICATION_CAPACITY + 10):
                fake = Response(
                    status=Status.AMBIGUOUS,
                    question="q",
                    clarification_id=f"fake-{i}",
                )
                service._record_ask(None, "q", True, fake)
            assert len(service._parked) == CLARIFICATION_CAPACITY
            assert "fake-0" not in service._parked  # oldest evicted first
        finally:
            service.close()

    def test_dead_clarification_id_cleans_bookkeeping(self, fleet_db_args):
        service = _service(fleet_db_args, clarification_margin=10.0)
        try:
            # A park whose live id the pipeline no longer knows (LRU
            # eviction across a long run, or a log older than the cap).
            service._parked["clar-zombie"] = ("q", None)
            service._clar_aliases["old-id"] = "clar-zombie"
            with pytest.raises(ClarificationError):
                service.resolve("old-id", 0)
            assert "clar-zombie" not in service._parked
            assert "old-id" not in service._clar_aliases
        finally:
            service.close()

    def test_bad_choice_index_keeps_clarification_parked(self, fleet_db_args):
        service = _service(fleet_db_args, clarification_margin=10.0)
        try:
            ambiguous = service.ask("ships from norfolk", clarify=True)
            with pytest.raises(ClarificationError):
                service.resolve(ambiguous.clarification_id, 99)
            # Still parked: the user just picks again.
            assert ambiguous.clarification_id in service._parked
            resolved = service.resolve(ambiguous.clarification_id, 0)
            assert resolved.status is Status.ANSWERED
        finally:
            service.close()


class TestDurableSessions:
    def _durable(self, path, fleet_db_args):
        return NliService(
            fleet.build_database(**fleet_db_args),
            domain=fleet.domain(),
            config=NliConfig(clarification_margin=10.0),
            persistence=SessionLog(path),
        )

    def test_dialogue_history_survives_restart(self, tmp_path, fleet_db_args):
        path = tmp_path / "log.jsonl"
        first = self._durable(path, fleet_db_args)
        first.ask("ships in the pacific fleet", session=first.ensure_session("u"))
        first.close()

        second = self._durable(path, fleet_db_args)
        try:
            followup = second.ask("how many of them are there", session="u")
            assert followup.ok
            assert followup.answer.sql.lower().startswith("select count")
        finally:
            second.close()

    def test_clarification_alias_survives_restart(self, tmp_path, fleet_db_args):
        path = tmp_path / "log.jsonl"
        first = self._durable(path, fleet_db_args)
        ambiguous = first.ask("ships from norfolk", clarify=True)
        first.close()

        second = self._durable(path, fleet_db_args)
        try:
            resolved = second.resolve(ambiguous.clarification_id, 0)
            assert resolved.status is Status.ANSWERED
            assert resolved.answer.sql == ambiguous.choices[0].sql
        finally:
            second.close()

    def test_closed_sessions_are_compacted_away(self, tmp_path, fleet_db_args):
        path = tmp_path / "log.jsonl"
        first = self._durable(path, fleet_db_args)
        keep = first.ensure_session("keep")
        drop = first.ensure_session("drop")
        first.ask("how many ships are there", session=keep)
        first.ask("how many ships are there", session=drop)
        first.close_session(drop)
        first.close()

        second = self._durable(path, fleet_db_args)
        try:
            # Replay + compaction happened in the constructor: the dropped
            # session is gone from the rewritten log and from the service.
            text = path.read_text()
            assert '"drop"' not in text
            assert second.session(keep).transcript
            with pytest.raises(KeyError):
                second.session(drop)
        finally:
            second.close()

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = SessionLog(path)
        log.append({"op": "open", "sid": "ok"})
        log.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "turn", "sid": "ok", "ques')  # kill -9 here
        records = SessionLog(path).load()
        assert records == [{"op": "open", "sid": "ok"}]

    def test_replay_tolerates_stale_records(self, tmp_path, fleet_db_args):
        path = tmp_path / "log.jsonl"
        log = SessionLog(path)
        log.append({"op": "open", "sid": "s"})
        log.append({"op": "turn", "sid": "vanished",
                    "question": "how many ships are there", "clarify": False,
                    "choice": None})  # session never opened
        log.append({"op": "resolve", "id": "clar-404", "choice": 0})
        log.append({"op": "turn", "sid": "s",
                    "question": "how many ships are there", "clarify": False,
                    "choice": None})
        log.close()
        service = self._durable(path, fleet_db_args)
        try:
            assert service.session("s").transcript  # good records replayed
        finally:
            service.close()

    def test_open_session_skips_client_chosen_ids(self, fleet_db_args):
        service = _service(fleet_db_args)
        try:
            service.ensure_session("s1")
            generated = service.open_session()
            assert generated != "s1"
        finally:
            service.close()

    def test_sessions_are_capped_lru(self, fleet_db_args):
        service = _service(fleet_db_args, max_sessions=3)
        try:
            for name in ("a", "b", "c"):
                service.ensure_session(name)
            service.session("a")  # touch: "a" is now most recently used
            service.ensure_session("d")  # over cap: evicts LRU ("b")
            assert service.has_session("a")
            assert not service.has_session("b")
            assert service.has_session("c") and service.has_session("d")
            assert service.stats["open_sessions"] == 3
        finally:
            service.close()

    def test_abandoned_clarification_does_not_resurrect_after_restart(
        self, tmp_path, fleet_db_args
    ):
        path = tmp_path / "log.jsonl"
        first = self._durable(path, fleet_db_args)
        first.ensure_session("u")
        first.ask("ships from norfolk", session="u", clarify=True)
        # The user moves on without resolving: pending state clears, but
        # the park stays resolvable.
        first.ask("ships in the pacific fleet", session="u")
        assert first.session("u").pending_clarification is None
        first.close()

        second = self._durable(path, fleet_db_args)
        try:
            # Replay must not leave the session re-pending the abandoned
            # clarification, and follow-ups bind to the *last* turn.
            assert second.session("u").pending_clarification is None
            followup = second.ask("how many of them are there", session="u")
            assert followup.ok
            assert "pacific" in followup.answer.sql.lower()
        finally:
            second.close()
