"""Threaded hammer tests for the NliService read-write facade.

Acceptance: N threads of ``ask()`` interleaved with DML writers produce
no torn reads (every count is a value the table actually passed
through), no lost delta refreshes (the final state is exact), and stable
stats counters (lock-guarded increments, no lost updates).
"""

from __future__ import annotations

import threading

from repro.datasets import fleet
from repro.service import NliService, RwLock

ASKERS = 6
ASKS_PER_THREAD = 15
WRITES = 10
BASE_SHIPS = 60
QUESTION = "how many ships are there"


def _service() -> NliService:
    return NliService(fleet.build_database(), domain=fleet.domain())


class TestThreadedAskWithDml:
    def test_hammer_with_interleaved_writes(self):
        service = _service()
        errors: list[BaseException] = []
        observed: list[int] = []
        start = threading.Barrier(ASKERS + 1)

        def asker() -> None:
            try:
                start.wait()
                for _ in range(ASKS_PER_THREAD):
                    response = service.ask(QUESTION)
                    assert response.ok, response.diagnostics
                    observed.append(response.answer.result.scalar())
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def writer() -> None:
            try:
                start.wait()
                for i in range(WRITES):
                    service.execute(
                        f"INSERT INTO ship VALUES ({800 + i}, 'Swarm {i}', "
                        "3, 1, 1, 1, 8000, 600, 30, 1976, 150)"
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=asker) for _ in range(ASKERS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors
        # No torn reads: every observed count is a state the table passed
        # through (monotonically growing from BASE to BASE+WRITES).
        assert observed and all(
            BASE_SHIPS <= count <= BASE_SHIPS + WRITES for count in observed
        ), sorted(set(observed))
        # No lost delta refreshes: the next question sees the exact final
        # state, with no full rebuild ever needed.
        final = service.ask(QUESTION)
        assert final.answer.result.scalar() == BASE_SHIPS + WRITES
        stats = service.stats
        assert stats["full_rebuilds"] == 1
        assert not service.nli._pending_deltas

    def test_stats_counters_are_stable(self):
        service = _service()
        service.ask(QUESTION)  # prime outside the measured window
        asks_before = service.stats["asks"]
        start = threading.Barrier(ASKERS)

        def asker() -> None:
            start.wait()
            for _ in range(ASKS_PER_THREAD):
                service.ask(QUESTION)

        threads = [threading.Thread(target=asker) for _ in range(ASKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = service.stats
        # Lock-guarded increments: no lost updates under contention.
        assert stats["asks"] == asks_before + ASKERS * ASKS_PER_THREAD
        assert stats["lock_read_acquires"] >= ASKERS * ASKS_PER_THREAD

    def test_sessions_isolated_across_threads(self):
        service = _service()
        errors: list[BaseException] = []

        def converse(fleet_name: str, expected_sql_value: str) -> None:
            try:
                sid = service.open_session()
                first = service.ask(
                    f"how many ships are in the {fleet_name} fleet", session=sid
                )
                assert first.ok
                followup = service.ask(
                    "how many of them are submarines", session=sid
                )
                assert followup.ok
                assert expected_sql_value in followup.answer.sql
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=converse, args=("pacific", "Pacific")),
            threading.Thread(target=converse, args=("atlantic", "Atlantic")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors


class TestRwLock:
    def test_writer_excludes_readers(self):
        lock = RwLock()
        order: list[str] = []
        with lock.write_locked():
            reader = threading.Thread(
                target=lambda: (lock.acquire_read(), order.append("read"),
                                lock.release_read())
            )
            reader.start()
            order.append("write")
        reader.join()
        assert order == ["write", "read"]

    def test_readers_overlap(self):
        lock = RwLock()
        inside = threading.Barrier(2, timeout=5)

        def reader() -> None:
            with lock.read_locked():
                inside.wait()  # both threads are inside the read section

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert lock.stats["max_concurrent_readers"] >= 2

    def test_waiting_writer_blocks_new_readers(self):
        lock = RwLock()
        lock.acquire_read()
        writer_done = threading.Event()

        def writer() -> None:
            with lock.write_locked():
                writer_done.set()

        late_reader_ran = threading.Event()

        def late_reader() -> None:
            with lock.read_locked():
                late_reader_ran.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # Give the writer time to queue, then try to sneak a reader in.
        import time

        time.sleep(0.05)
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        time.sleep(0.05)
        # Writer preference: the late reader must still be waiting.
        assert not late_reader_ran.is_set()
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert writer_done.is_set() and late_reader_ran.is_set()
