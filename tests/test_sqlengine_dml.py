"""Tests for CREATE TABLE / INSERT / DELETE / UPDATE execution and CSV IO."""

import io

import pytest

from repro.errors import IntegrityError, SchemaError
from repro.sqlengine import Database, Engine
from repro.sqlengine.csvio import dump_csv, load_csv


@pytest.fixture()
def fresh():
    db = Database()
    return Engine(db)


class TestCreate:
    def test_create_and_describe(self, fresh):
        fresh.execute("CREATE TABLE crew (id INT PRIMARY KEY, name TEXT NOT NULL)")
        schema = fresh.database.table("crew").schema
        assert schema.primary_key == "id"
        assert not schema.column("name").nullable

    def test_type_synonyms(self, fresh):
        fresh.execute(
            "CREATE TABLE t (a INTEGER, b REAL, c VARCHAR, d BOOLEAN, e DOUBLE)"
        )
        kinds = [c.sql_type.value for c in fresh.database.table("t").schema.columns]
        assert kinds == ["INT", "FLOAT", "TEXT", "BOOL", "FLOAT"]

    def test_unknown_type_rejected(self, fresh):
        with pytest.raises(SchemaError):
            fresh.execute("CREATE TABLE t (a BLOB)")

    def test_references(self, fresh):
        fresh.execute("CREATE TABLE a (id INT PRIMARY KEY)")
        fresh.execute("CREATE TABLE b (id INT PRIMARY KEY, aid INT REFERENCES a(id))")
        fresh.execute("INSERT INTO a VALUES (1)")
        fresh.execute("INSERT INTO b VALUES (1, 1)")
        with pytest.raises(IntegrityError):
            fresh.execute("INSERT INTO b VALUES (2, 42)")


class TestInsertDeleteUpdate:
    def setup_t(self, engine):
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, tag TEXT)")
        engine.execute(
            "INSERT INTO t VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'a')"
        )

    def test_insert_reports_count(self, fresh):
        self.setup_t(fresh)
        rs = fresh.execute("INSERT INTO t VALUES (4, 40, 'c')")
        assert rs.rows == [(1,)]

    def test_insert_named_columns(self, fresh):
        self.setup_t(fresh)
        fresh.execute("INSERT INTO t (id, tag) VALUES (9, 'z')")
        rs = fresh.execute("SELECT v, tag FROM t WHERE id = 9")
        assert rs.rows == [(None, "z")]

    def test_insert_negative_number(self, fresh):
        self.setup_t(fresh)
        fresh.execute("INSERT INTO t VALUES (5, -7, 'n')")
        assert fresh.execute("SELECT v FROM t WHERE id = 5").scalar() == -7

    def test_delete_with_where(self, fresh):
        self.setup_t(fresh)
        rs = fresh.execute("DELETE FROM t WHERE tag = 'a'")
        assert rs.rows == [(2,)]
        assert fresh.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_delete_all(self, fresh):
        self.setup_t(fresh)
        fresh.execute("DELETE FROM t")
        assert fresh.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_update_expression(self, fresh):
        self.setup_t(fresh)
        rs = fresh.execute("UPDATE t SET v = v * 2 WHERE tag = 'a'")
        assert rs.rows == [(2,)]
        assert fresh.execute("SELECT SUM(v) FROM t").scalar() == 10 * 2 + 20 + 30 * 2

    def test_update_unknown_column_rejected(self, fresh):
        self.setup_t(fresh)
        with pytest.raises(SchemaError):
            fresh.execute("UPDATE t SET missing = 1")

    def test_update_preserves_indexes(self, fresh):
        self.setup_t(fresh)
        fresh.database.table("t").create_hash_index("tag")
        fresh.execute("UPDATE t SET tag = 'z' WHERE id = 1")
        rows = fresh.database.table("t").lookup_equal("tag", "z")
        assert len(rows) == 1
        assert fresh.database.table("t").lookup_equal("tag", "a") != []

    def test_update_preserves_row_order(self, fresh):
        # Regression: delete+reinsert moved the updated row to the end.
        self.setup_t(fresh)
        fresh.execute("UPDATE t SET v = 21 WHERE id = 2")
        assert fresh.execute("SELECT id FROM t").rows == [(1,), (2,), (3,)]

    def test_update_preserves_row_id(self, fresh):
        self.setup_t(fresh)
        table = fresh.database.table("t")
        before = {row_id for row_id, row in table.rows_with_ids() if row[0] == 2}
        fresh.execute("UPDATE t SET v = 21 WHERE id = 2")
        after = {row_id for row_id, row in table.rows_with_ids() if row[0] == 2}
        assert before == after

    def test_update_pk_change_allowed(self, fresh):
        self.setup_t(fresh)
        fresh.execute("UPDATE t SET id = 9 WHERE id = 2")
        assert fresh.execute("SELECT v FROM t WHERE id = 9").scalar() == 20
        assert fresh.execute("SELECT COUNT(*) FROM t WHERE id = 2").scalar() == 0

    def test_update_pk_collision_rejected(self, fresh):
        self.setup_t(fresh)
        with pytest.raises(IntegrityError):
            fresh.execute("UPDATE t SET id = 1 WHERE id = 2")

    def test_update_pk_self_assignment_ok(self, fresh):
        self.setup_t(fresh)
        fresh.execute("UPDATE t SET id = 2 WHERE id = 2")
        assert fresh.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_failed_multi_row_update_leaves_table_untouched(self, fresh):
        # Regression: the collision used to surface mid-apply, leaving
        # earlier rows already updated.
        self.setup_t(fresh)
        before = fresh.execute("SELECT id, v, tag FROM t").rows
        with pytest.raises(IntegrityError):
            fresh.execute("UPDATE t SET id = 9 WHERE id IN (2, 3)")
        assert fresh.execute("SELECT id, v, tag FROM t").rows == before

    def test_update_pk_chain_shift(self, fresh):
        # id = id + 1 transiently collides row-by-row; the two-phase batch
        # apply must land on the valid final state.
        self.setup_t(fresh)
        fresh.execute("UPDATE t SET id = id + 1")
        assert fresh.execute("SELECT id FROM t").rows == [(2,), (3,), (4,)]
        assert fresh.execute("SELECT v FROM t WHERE id = 2").scalar() == 10

    def test_update_pk_swap(self, fresh):
        self.setup_t(fresh)
        fresh.execute("UPDATE t SET id = 4 - id WHERE id IN (1, 3)")
        assert fresh.execute("SELECT v FROM t WHERE id = 1").scalar() == 30
        assert fresh.execute("SELECT v FROM t WHERE id = 3").scalar() == 10


class TestUpdateForeignKeys:
    """UPDATE enforces FKs in both directions (the ROADMAP-listed hole)."""

    def setup_parent_child(self, engine):
        engine.execute("CREATE TABLE parent (id INT PRIMARY KEY, name TEXT)")
        engine.execute(
            "CREATE TABLE child (id INT PRIMARY KEY, pid INT REFERENCES parent(id))"
        )
        engine.execute("INSERT INTO parent VALUES (1, 'a'), (2, 'b')")
        engine.execute("INSERT INTO child VALUES (10, 1), (11, 2)")

    def test_parent_pk_rewrite_with_children_rejected(self, fresh):
        self.setup_parent_child(fresh)
        with pytest.raises(IntegrityError) as info:
            fresh.execute("UPDATE parent SET id = 9 WHERE id = 1")
        # Same error shape as INSERT-time FK violations.
        assert "child.pid=1 has no match in parent.id" in str(info.value)
        # The violation left the table untouched.
        assert fresh.execute("SELECT id FROM parent").rows == [(1,), (2,)]

    def test_parent_pk_rewrite_without_children_ok(self, fresh):
        self.setup_parent_child(fresh)
        fresh.execute("DELETE FROM child WHERE pid = 2")
        fresh.execute("UPDATE parent SET id = 9 WHERE id = 2")
        assert fresh.execute("SELECT COUNT(*) FROM parent WHERE id = 9").scalar() == 1

    def test_parent_non_key_update_unaffected(self, fresh):
        self.setup_parent_child(fresh)
        fresh.execute("UPDATE parent SET name = 'renamed' WHERE id = 1")
        assert fresh.execute(
            "SELECT name FROM parent WHERE id = 1"
        ).scalar() == "renamed"

    def test_child_fk_update_to_missing_parent_rejected(self, fresh):
        self.setup_parent_child(fresh)
        with pytest.raises(IntegrityError) as info:
            fresh.execute("UPDATE child SET pid = 42 WHERE id = 10")
        assert "child.pid=42 has no match in parent.id" in str(info.value)

    def test_child_fk_update_to_existing_parent_ok(self, fresh):
        self.setup_parent_child(fresh)
        fresh.execute("UPDATE child SET pid = 2 WHERE id = 10")
        assert fresh.execute("SELECT pid FROM child WHERE id = 10").scalar() == 2

    def test_child_fk_update_to_null_ok(self, fresh):
        self.setup_parent_child(fresh)
        fresh.execute("UPDATE child SET pid = NULL WHERE id = 10")
        assert fresh.execute(
            "SELECT COUNT(*) FROM child WHERE pid IS NULL"
        ).scalar() == 1

    def test_pk_shift_keeping_all_values_alive_ok(self, fresh):
        # A batch that rewrites keys but keeps every referenced value
        # present (a swap) must not be rejected.
        self.setup_parent_child(fresh)
        fresh.execute("UPDATE parent SET id = 3 - id")
        assert sorted(fresh.execute("SELECT id FROM parent").rows) == [(1,), (2,)]

    def test_self_referencing_batch_rewrite_ok(self, fresh):
        # A batch that rewrites keys and their in-batch references together
        # is judged against the post-batch state, not the pre-update one.
        fresh.execute(
            "CREATE TABLE emp (id INT PRIMARY KEY, manager_id INT REFERENCES emp(id))"
        )
        fresh.execute("INSERT INTO emp VALUES (1, 1), (2, 1)")
        fresh.execute("UPDATE emp SET id = id + 100, manager_id = manager_id + 100")
        assert sorted(fresh.execute("SELECT id, manager_id FROM emp").rows) == [
            (101, 101), (102, 101),
        ]
        assert not fresh.database.check_integrity()

    def test_self_referencing_strand_still_rejected(self, fresh):
        fresh.execute(
            "CREATE TABLE emp (id INT PRIMARY KEY, manager_id INT REFERENCES emp(id))"
        )
        fresh.execute("INSERT INTO emp VALUES (1, 1), (2, 1)")
        with pytest.raises(IntegrityError):
            fresh.execute("UPDATE emp SET id = 9 WHERE id = 1")

    def test_enforcement_off_allows_stranding(self):
        db = Database(enforce_fk=False)
        engine = Engine(db)
        engine.execute("CREATE TABLE parent (id INT PRIMARY KEY)")
        engine.execute(
            "CREATE TABLE child (id INT PRIMARY KEY, pid INT REFERENCES parent(id))"
        )
        engine.execute("INSERT INTO parent VALUES (1)")
        engine.execute("INSERT INTO child VALUES (10, 1)")
        engine.execute("UPDATE parent SET id = 9 WHERE id = 1")
        assert db.check_integrity()  # the sweep still reports it


class TestDmlUsesIndexes:
    """UPDATE/DELETE route WHERE matching through the scan-planning path."""

    def _populated(self, use_indexes):
        db = Database()
        engine = Engine(db, use_indexes=use_indexes)
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, tag TEXT)")
        for i in range(40):
            engine.execute(f"INSERT INTO t VALUES ({i}, {i * 10}, 'g{i % 4}')")
        db.table("t").create_sorted_index("v")
        return engine

    def test_indexed_update_matches_unindexed(self):
        indexed = self._populated(use_indexes=True)
        plain = self._populated(use_indexes=False)
        for engine in (indexed, plain):
            engine.execute("UPDATE t SET tag = 'hit' WHERE id = 7")
            engine.execute("UPDATE t SET tag = 'range' WHERE v BETWEEN 100 AND 150")
        left = indexed.execute("SELECT id, v, tag FROM t").rows
        right = plain.execute("SELECT id, v, tag FROM t").rows
        assert left == right

    def test_indexed_delete_matches_unindexed(self):
        indexed = self._populated(use_indexes=True)
        plain = self._populated(use_indexes=False)
        for engine in (indexed, plain):
            engine.execute("DELETE FROM t WHERE id IN (3, 5, 8)")
            engine.execute("DELETE FROM t WHERE v > 300")
        assert (
            indexed.execute("SELECT id FROM t").rows
            == plain.execute("SELECT id FROM t").rows
        )

    def test_update_where_subquery_still_works(self):
        engine = self._populated(use_indexes=True)
        engine.execute(
            "UPDATE t SET tag = 'max' WHERE v = (SELECT MAX(v) FROM t)"
        )
        assert engine.execute("SELECT COUNT(*) FROM t WHERE tag = 'max'").scalar() == 1


class TestCsvIo:
    def test_roundtrip(self, fresh):
        fresh.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, v FLOAT)")
        fresh.execute("INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', NULL)")
        table = fresh.database.table("t")
        text = dump_csv(table)
        db2 = Database()
        engine2 = Engine(db2)
        engine2.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, v FLOAT)")
        loaded = load_csv(db2.table("t"), io.StringIO(text))
        assert loaded == 2
        assert list(db2.table("t").rows()) == list(table.rows())

    def test_header_reorders_columns(self, fresh):
        fresh.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        load_csv(fresh.database.table("t"), io.StringIO("name,id\nalpha,1\n"))
        assert list(fresh.database.table("t").rows()) == [(1, "alpha")]

    def test_unknown_header_rejected(self, fresh):
        fresh.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with pytest.raises(SchemaError):
            load_csv(fresh.database.table("t"), io.StringIO("bogus\n1\n"))

    def test_file_roundtrip(self, fresh, tmp_path):
        fresh.execute("CREATE TABLE t (id INT PRIMARY KEY, b BOOL)")
        fresh.execute("INSERT INTO t VALUES (1, TRUE), (2, FALSE)")
        path = tmp_path / "t.csv"
        dump_csv(fresh.database.table("t"), path)
        db2 = Database()
        Engine(db2).execute("CREATE TABLE t (id INT PRIMARY KEY, b BOOL)")
        load_csv(db2.table("t"), path)
        assert list(db2.table("t").rows()) == [(1, True), (2, False)]
