"""Unit tests for hash and sorted indexes, including maintenance on delete."""

import pytest

from repro.sqlengine import Column, SqlType, TableSchema
from repro.sqlengine.indexes import HashIndex, SortedIndex
from repro.sqlengine.table import Table


class TestHashIndex:
    def test_add_and_lookup(self):
        index = HashIndex("c")
        index.add("x", 0)
        index.add("x", 2)
        index.add("y", 1)
        assert sorted(index.lookup("x")) == [0, 2]
        assert index.lookup("z") == []

    def test_null_never_matches(self):
        index = HashIndex("c")
        index.add(None, 0)
        assert index.lookup(None) == []
        assert len(index) == 1

    def test_remove(self):
        index = HashIndex("c")
        index.add("x", 0)
        index.add("x", 1)
        index.remove("x", 0)
        assert index.lookup("x") == [1]
        index.remove("x", 1)
        assert index.lookup("x") == []
        index.remove("x", 5)  # removing a missing entry is a no-op

    def test_distinct_values(self):
        index = HashIndex("c")
        for i, v in enumerate(["a", "b", "a"]):
            index.add(v, i)
        assert sorted(index.distinct_values()) == ["a", "b"]


class TestSortedIndex:
    def make(self, values):
        index = SortedIndex("c")
        for i, v in enumerate(values):
            index.add(v, i)
        return index

    def test_range_inclusive(self):
        index = self.make([10, 20, 30, 40])
        assert index.range_lookup(20, 30) == [1, 2]

    def test_range_exclusive(self):
        index = self.make([10, 20, 30, 40])
        assert index.range_lookup(10, 40, low_inclusive=False, high_inclusive=False) == [1, 2]

    def test_open_bounds(self):
        index = self.make([10, 20, 30])
        assert index.range_lookup(low=20) == [1, 2]
        assert index.range_lookup(high=20) == [0, 1]
        assert index.range_lookup() == [0, 1, 2]

    def test_duplicates(self):
        index = self.make([5, 5, 5])
        assert index.lookup(5) == [0, 1, 2]

    def test_remove_specific_rowid(self):
        index = self.make([5, 5, 7])
        index.remove(5, 0)
        assert index.lookup(5) == [1]

    def test_null_tracked_but_unmatched(self):
        index = self.make([None, 3])
        assert index.lookup(None) == []
        assert index.lookup(3) == [1]
        assert len(index) == 2

    def test_min_max(self):
        index = self.make([4, 1, 9])
        assert index.min_value() == 1
        assert index.max_value() == 9
        assert SortedIndex("c").min_value() is None


class TestTableIndexMaintenance:
    def make_table(self):
        table = Table(
            TableSchema(
                "t",
                [
                    Column("id", SqlType.INT, nullable=False),
                    Column("score", SqlType.INT),
                ],
                primary_key="id",
            )
        )
        table.insert_many([(1, 10), (2, 20), (3, 20), (4, None)])
        return table

    def test_create_hash_index_backfills(self):
        table = self.make_table()
        index = table.create_hash_index("score")
        assert sorted(index.lookup(20)) == [1, 2]

    def test_create_index_idempotent(self):
        table = self.make_table()
        first = table.create_hash_index("score")
        assert table.create_hash_index("score") is first

    def test_index_maintained_on_insert(self):
        table = self.make_table()
        index = table.create_hash_index("score")
        table.insert((5, 20))
        assert len(index.lookup(20)) == 3

    def test_index_maintained_on_delete(self):
        table = self.make_table()
        index = table.create_sorted_index("score")
        table.delete_row(1)  # row id 1 is (2, 20)
        ids = index.lookup(20)
        rows = [table.row_by_id(i) for i in ids]
        assert rows == [(3, 20)]

    def test_sorted_index_on_bool_rejected(self):
        table = Table(
            TableSchema("t", [Column("flag", SqlType.BOOL)])
        )
        from repro.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            table.create_sorted_index("flag")

    def test_pk_index_exposed_as_hash_index(self):
        table = self.make_table()
        assert table.hash_index("id") is not None
        assert table.hash_index("score") is None
