"""Optimizer tests: plan shape assertions + result equivalence vs naive plans."""

import pytest

from repro.sqlengine import Database, Engine
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import FilterNode, HashJoinNode, ScanNode, build_plan
from repro.sqlengine.optimizer import optimize

from tests.conftest import make_library_db


QUERIES = [
    "SELECT * FROM author WHERE id = 2",
    "SELECT * FROM book WHERE year > 1965 AND pages < 300",
    "SELECT a.name, b.title FROM author a JOIN book b ON a.id = b.author_id",
    "SELECT a.name FROM author a, book b WHERE a.id = b.author_id AND b.year < 1970",
    "SELECT b.title, l.member FROM book b LEFT JOIN loan l ON l.book_id = b.id",
    "SELECT * FROM author a JOIN book b ON a.id = b.author_id AND b.pages > 200",
    "SELECT title FROM book WHERE author_id IN (SELECT id FROM author WHERE country = 'usa')",
    "SELECT a.country, COUNT(*) FROM author a GROUP BY a.country",
    "SELECT * FROM book WHERE price IS NULL",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_optimized_equals_naive(sql):
    """The optimizer must never change query results."""
    db = make_library_db()
    fast = Engine(db, use_optimizer=True)
    slow = Engine(db, use_optimizer=False)
    left = fast.execute(sql)
    right = slow.execute(sql)
    assert left.columns == right.columns
    assert sorted(map(repr, left.rows)) == sorted(map(repr, right.rows))


class TestPlanShapes:
    def setup_method(self):
        self.db = make_library_db()

    def plan(self, sql, use_indexes=True):
        return optimize(build_plan(parse_select(sql), self.db), self.db, use_indexes)

    def test_pk_equality_becomes_index_hint(self):
        plan = self.plan("SELECT * FROM author WHERE id = 2")
        assert isinstance(plan, ScanNode)
        assert plan.eq_filters == [("id", 2)]
        assert plan.residual_filters == []

    def test_range_hint_requires_sorted_index(self):
        plan = self.plan("SELECT * FROM book WHERE year > 1965")
        assert isinstance(plan, ScanNode)
        assert plan.range_filters == []  # no index yet -> stays residual
        self.db.table("book").create_sorted_index("year")
        plan = self.plan("SELECT * FROM book WHERE year > 1965")
        assert plan.range_filters == [("year", ">", 1965)]

    def test_flipped_literal_range(self):
        self.db.table("book").create_sorted_index("year")
        plan = self.plan("SELECT * FROM book WHERE 1970 >= year")
        assert plan.range_filters == [("year", "<=", 1970)]

    def test_indexes_disabled(self):
        plan = self.plan("SELECT * FROM author WHERE id = 2", use_indexes=False)
        assert isinstance(plan, ScanNode)
        assert plan.eq_filters == []
        assert len(plan.residual_filters) == 1

    def test_equi_join_becomes_hash_join(self):
        plan = self.plan(
            "SELECT * FROM author a JOIN book b ON a.id = b.author_id"
        )
        assert isinstance(plan, HashJoinNode)

    def test_where_join_predicate_folded(self):
        plan = self.plan(
            "SELECT * FROM author a, book b WHERE a.id = b.author_id"
        )
        assert isinstance(plan, HashJoinNode)

    def test_single_table_conjunct_pushed_through_join(self):
        plan = self.plan(
            "SELECT * FROM author a JOIN book b ON a.id = b.author_id "
            "WHERE a.country = 'usa'"
        )
        assert isinstance(plan, HashJoinNode)
        left = plan.left
        assert isinstance(left, ScanNode)
        assert left.residual_filters  # pushed into author scan

    def test_left_join_right_predicate_not_pushed(self):
        plan = self.plan(
            "SELECT * FROM book b LEFT JOIN loan l ON l.book_id = b.id "
            "WHERE l.returned = TRUE"
        )
        # The l-side predicate must remain above the join.
        assert isinstance(plan, FilterNode)

    def test_subquery_predicate_not_pushed_into_scan_hints(self):
        plan = self.plan(
            "SELECT * FROM book WHERE author_id IN (SELECT id FROM author)"
        )
        # Subquery conjuncts stay as residual filters above/at the scan.
        assert isinstance(plan, (FilterNode, ScanNode))

    def test_describe_mentions_nodes(self):
        text = self.plan(
            "SELECT * FROM author a JOIN book b ON a.id = b.author_id"
        ).describe()
        assert "HashJoin" in text and "Scan(author" in text


class TestIndexCorrectness:
    def test_index_scan_matches_full_scan(self):
        db = make_library_db()
        db.table("book").create_sorted_index("pages")
        with_idx = Engine(db, use_indexes=True)
        without = Engine(db, use_indexes=False)
        sql = "SELECT title FROM book WHERE pages >= 204 AND pages <= 304"
        assert sorted(with_idx.execute(sql).rows) == sorted(without.execute(sql).rows)

    def test_multiple_eq_hints_intersect(self):
        db = Database()
        engine = Engine(db)
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT)")
        for i in range(50):
            engine.execute(f"INSERT INTO t VALUES ({i}, {i % 5}, {i % 3})")
        db.table("t").create_hash_index("a")
        db.table("t").create_hash_index("b")
        rs = engine.execute("SELECT COUNT(*) FROM t WHERE a = 2 AND b = 1")
        naive = Engine(db, use_optimizer=False).execute(
            "SELECT COUNT(*) FROM t WHERE a = 2 AND b = 1"
        )
        assert rs.scalar() == naive.scalar()
