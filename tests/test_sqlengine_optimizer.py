"""Optimizer tests: plan shape assertions + result equivalence vs naive plans."""

import pytest

from repro.sqlengine import Database, Engine
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import (
    FilterNode,
    HashJoinNode,
    ReorderNode,
    ScanNode,
    build_plan,
)
from repro.sqlengine.optimizer import estimate_rows, optimize

from tests.conftest import make_library_db


QUERIES = [
    "SELECT * FROM author WHERE id = 2",
    "SELECT * FROM book WHERE year > 1965 AND pages < 300",
    "SELECT a.name, b.title FROM author a JOIN book b ON a.id = b.author_id",
    "SELECT a.name FROM author a, book b WHERE a.id = b.author_id AND b.year < 1970",
    "SELECT b.title, l.member FROM book b LEFT JOIN loan l ON l.book_id = b.id",
    "SELECT * FROM author a JOIN book b ON a.id = b.author_id AND b.pages > 200",
    "SELECT title FROM book WHERE author_id IN (SELECT id FROM author WHERE country = 'usa')",
    "SELECT a.country, COUNT(*) FROM author a GROUP BY a.country",
    "SELECT * FROM book WHERE price IS NULL",
    "SELECT * FROM book WHERE id IN (1, 3, 5)",
    "SELECT * FROM book WHERE pages BETWEEN 200 AND 300",
    "SELECT a.name, b.title, l.member FROM author a "
    "JOIN book b ON a.id = b.author_id JOIN loan l ON l.book_id = b.id",
    "SELECT * FROM loan l JOIN book b ON l.book_id = b.id "
    "JOIN author a ON b.author_id = a.id WHERE a.country = 'poland'",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_optimized_equals_naive(sql):
    """The optimizer must never change query results."""
    db = make_library_db()
    fast = Engine(db, use_optimizer=True)
    slow = Engine(db, use_optimizer=False)
    left = fast.execute(sql)
    right = slow.execute(sql)
    assert left.columns == right.columns
    assert sorted(map(repr, left.rows)) == sorted(map(repr, right.rows))


class TestPlanShapes:
    def setup_method(self):
        self.db = make_library_db()

    def plan(self, sql, use_indexes=True):
        return optimize(build_plan(parse_select(sql), self.db), self.db, use_indexes)

    def test_pk_equality_becomes_index_hint(self):
        plan = self.plan("SELECT * FROM author WHERE id = 2")
        assert isinstance(plan, ScanNode)
        assert plan.eq_filters == [("id", 2)]
        assert plan.residual_filters == []

    def test_range_hint_requires_sorted_index(self):
        plan = self.plan("SELECT * FROM book WHERE year > 1965")
        assert isinstance(plan, ScanNode)
        assert plan.range_filters == []  # no index yet -> stays residual
        self.db.table("book").create_sorted_index("year")
        plan = self.plan("SELECT * FROM book WHERE year > 1965")
        assert plan.range_filters == [("year", ">", 1965)]

    def test_flipped_literal_range(self):
        self.db.table("book").create_sorted_index("year")
        plan = self.plan("SELECT * FROM book WHERE 1970 >= year")
        assert plan.range_filters == [("year", "<=", 1970)]

    def test_indexes_disabled(self):
        plan = self.plan("SELECT * FROM author WHERE id = 2", use_indexes=False)
        assert isinstance(plan, ScanNode)
        assert plan.eq_filters == []
        assert len(plan.residual_filters) == 1

    def test_equi_join_becomes_hash_join(self):
        plan = self.plan(
            "SELECT * FROM author a JOIN book b ON a.id = b.author_id"
        )
        assert isinstance(plan, HashJoinNode)

    def test_where_join_predicate_folded(self):
        plan = self.plan(
            "SELECT * FROM author a, book b WHERE a.id = b.author_id"
        )
        assert isinstance(plan, HashJoinNode)

    def test_single_table_conjunct_pushed_through_join(self):
        plan = self.plan(
            "SELECT * FROM author a JOIN book b ON a.id = b.author_id "
            "WHERE a.country = 'usa'"
        )
        assert isinstance(plan, HashJoinNode)
        left = plan.left
        assert isinstance(left, ScanNode)
        assert left.residual_filters  # pushed into author scan

    def test_left_join_right_predicate_not_pushed(self):
        plan = self.plan(
            "SELECT * FROM book b LEFT JOIN loan l ON l.book_id = b.id "
            "WHERE l.returned = TRUE"
        )
        # The l-side predicate must remain above the join.
        assert isinstance(plan, FilterNode)

    def test_subquery_predicate_not_pushed_into_scan_hints(self):
        plan = self.plan(
            "SELECT * FROM book WHERE author_id IN (SELECT id FROM author)"
        )
        # Subquery conjuncts stay as residual filters above/at the scan.
        assert isinstance(plan, (FilterNode, ScanNode))

    def test_describe_mentions_nodes(self):
        text = self.plan(
            "SELECT * FROM author a JOIN book b ON a.id = b.author_id"
        ).describe()
        assert "HashJoin" in text and "Scan(author" in text

    def test_in_list_becomes_multi_eq_hint(self):
        plan = self.plan("SELECT * FROM author WHERE id IN (1, 3)")
        assert isinstance(plan, ScanNode)
        assert plan.in_filters == [("id", (1, 3))]
        assert plan.residual_filters == []
        assert "in=id" in plan.describe()

    def test_in_list_requires_index(self):
        plan = self.plan("SELECT * FROM book WHERE year IN (1969, 1974)")
        assert plan.in_filters == []  # year is unindexed -> stays residual
        assert len(plan.residual_filters) == 1

    def test_in_list_with_null_stays_residual(self):
        plan = self.plan("SELECT * FROM author WHERE id IN (1, NULL)")
        assert plan.in_filters == []

    def test_between_becomes_range_pair(self):
        self.db.table("book").create_sorted_index("pages")
        plan = self.plan("SELECT * FROM book WHERE pages BETWEEN 200 AND 300")
        assert plan.range_filters == [("pages", ">=", 200), ("pages", "<=", 300)]
        assert plan.residual_filters == []

    def test_between_requires_sorted_index(self):
        plan = self.plan("SELECT * FROM book WHERE pages BETWEEN 200 AND 300")
        assert plan.range_filters == []
        assert len(plan.residual_filters) == 1

    def test_not_between_stays_residual(self):
        self.db.table("book").create_sorted_index("pages")
        plan = self.plan("SELECT * FROM book WHERE pages NOT BETWEEN 200 AND 300")
        assert plan.range_filters == []

    def test_type_mismatched_literal_stays_residual(self):
        # An index lookup of '2' on an INT column silently misses, but the
        # residual evaluator raises TypeMismatchError — the hint must not
        # change semantics, so mismatched literals stay residual.
        for sql in (
            "SELECT * FROM author WHERE id = '2'",
            "SELECT * FROM author WHERE id IN ('1', 2)",
        ):
            plan = self.plan(sql)
            assert plan.eq_filters == [] and plan.in_filters == []
            assert len(plan.residual_filters) == 1

    def test_type_mismatch_raises_same_as_naive(self):
        from repro.errors import TypeMismatchError

        engine = Engine(self.db)
        naive = Engine(self.db, use_optimizer=False)
        for sql in (
            "SELECT * FROM author WHERE id = '2'",
            "SELECT * FROM author WHERE id IN ('1', 2)",
        ):
            with pytest.raises(TypeMismatchError):
                engine.execute(sql)
            with pytest.raises(TypeMismatchError):
                naive.execute(sql)

    def test_float_literal_on_int_column_still_hinted(self):
        plan = self.plan("SELECT * FROM author WHERE id = 2.0")
        assert plan.eq_filters == [("id", 2.0)]
        assert Engine(self.db).execute(
            "SELECT name FROM author WHERE id = 2.0"
        ).rows == [("Stanislaw Lem",)]


class TestCostModel:
    def setup_method(self):
        self.db = make_library_db()

    def plan(self, sql):
        return optimize(build_plan(parse_select(sql), self.db), self.db, True)

    def test_estimates_reflect_table_sizes(self):
        plan = self.plan("SELECT * FROM author a JOIN book b ON a.id = b.author_id")
        assert isinstance(plan, HashJoinNode)
        assert plan.est_left == pytest.approx(4.0)  # 4 authors
        assert plan.est_right == pytest.approx(6.0)  # 6 books

    def test_build_side_is_smaller_input(self):
        plan = self.plan("SELECT * FROM author a JOIN book b ON a.id = b.author_id")
        assert plan.build == "left"  # authors (4) < books (6)
        flipped = self.plan("SELECT * FROM book b JOIN author a ON a.id = b.author_id")
        assert flipped.build == "right"

    def test_build_side_shown_in_explain(self):
        text = self.plan(
            "SELECT * FROM author a JOIN book b ON a.id = b.author_id"
        ).describe()
        assert "build=left" in text and "est=4x6" in text

    def test_left_join_always_builds_right(self):
        plan = self.plan("SELECT * FROM book b LEFT JOIN loan l ON l.book_id = b.id")
        assert isinstance(plan, HashJoinNode)
        assert plan.build == "right"

    def test_filter_tightens_estimate(self):
        small = self.plan("SELECT * FROM book b WHERE b.id = 1")
        assert estimate_rows(small, self.db) == pytest.approx(1.0)

    def test_estimates_follow_dml(self):
        engine = Engine(self.db)
        for i in range(100, 130):
            engine.execute(f"INSERT INTO author VALUES ({i}, 'A{i}', 'usa', 1950)")
        plan = self.plan("SELECT * FROM author a JOIN book b ON a.id = b.author_id")
        assert plan.build == "right"  # authors (34) now outnumber books (6)


class TestJoinReordering:
    def setup_method(self):
        self.db = make_library_db()

    def plan(self, sql):
        return optimize(build_plan(parse_select(sql), self.db), self.db, True)

    def test_three_way_join_reordered_smallest_first(self):
        # loan has 4 rows, book 6, author 4 with a filter -> author first.
        plan = self.plan(
            "SELECT * FROM loan l JOIN book b ON l.book_id = b.id "
            "JOIN author a ON b.author_id = a.id WHERE a.country = 'poland'"
        )
        assert isinstance(plan, ReorderNode)
        assert plan.order == ("l", "b", "a")
        assert "Reorder(l, b, a)" in plan.describe()

    def test_reorder_preserves_star_column_order(self):
        sql = (
            "SELECT * FROM loan l JOIN book b ON l.book_id = b.id "
            "JOIN author a ON b.author_id = a.id WHERE a.country = 'poland'"
        )
        fast = Engine(self.db).execute(sql)
        slow = Engine(self.db, use_optimizer=False).execute(sql)
        assert fast.columns == slow.columns
        assert sorted(map(repr, fast.rows)) == sorted(map(repr, slow.rows))

    def test_two_table_join_not_wrapped(self):
        plan = self.plan("SELECT * FROM author a JOIN book b ON a.id = b.author_id")
        assert not isinstance(plan, ReorderNode)

    def test_left_join_chain_not_reordered(self):
        plan = self.plan(
            "SELECT * FROM book b LEFT JOIN loan l ON l.book_id = b.id "
            "LEFT JOIN author a ON b.author_id = a.id"
        )
        assert not isinstance(plan, ReorderNode)

    def test_subquery_condition_disables_reorder(self):
        self.plan(
            "SELECT * FROM loan l JOIN book b ON l.book_id = b.id "
            "JOIN author a ON b.author_id = a.id "
            "WHERE a.id IN (SELECT id FROM author)"
        )
        # The subquery conjunct stays above; the join chain below may or
        # may not reorder, but execution must stay correct either way.
        engine = Engine(self.db)
        naive = Engine(self.db, use_optimizer=False)
        sql = (
            "SELECT l.member FROM loan l JOIN book b ON l.book_id = b.id "
            "JOIN author a ON b.author_id = a.id "
            "WHERE a.id IN (SELECT id FROM author)"
        )
        assert sorted(engine.execute(sql).rows) == sorted(naive.execute(sql).rows)


class TestIndexCorrectness:
    def test_index_scan_matches_full_scan(self):
        db = make_library_db()
        db.table("book").create_sorted_index("pages")
        with_idx = Engine(db, use_indexes=True)
        without = Engine(db, use_indexes=False)
        sql = "SELECT title FROM book WHERE pages >= 204 AND pages <= 304"
        assert sorted(with_idx.execute(sql).rows) == sorted(without.execute(sql).rows)

    def test_multiple_eq_hints_intersect(self):
        db = Database()
        engine = Engine(db)
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT)")
        for i in range(50):
            engine.execute(f"INSERT INTO t VALUES ({i}, {i % 5}, {i % 3})")
        db.table("t").create_hash_index("a")
        db.table("t").create_hash_index("b")
        rs = engine.execute("SELECT COUNT(*) FROM t WHERE a = 2 AND b = 1")
        naive = Engine(db, use_optimizer=False).execute(
            "SELECT COUNT(*) FROM t WHERE a = 2 AND b = 1"
        )
        assert rs.scalar() == naive.scalar()
