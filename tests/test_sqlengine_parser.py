"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.lexer import TokenType, tokenize
from repro.sqlengine.parser import parse_select, parse_sql


class TestLexer:
    def test_keywords_vs_idents(self):
        tokens = tokenize("SELECT shipment FROM t")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENT  # 'shipment' is not 'select'
        assert tokens[-1].type is TokenType.EOF

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 .5")
        assert [t.value for t in tokens[:3]] == ["1", "2.5", ".5"]

    def test_number_followed_by_dot_ident(self):
        # "1.x" should not swallow the dot into the number.
        tokens = tokenize("t1.x")
        assert [t.value for t in tokens[:3]] == ["t1", ".", "x"]

    def test_operators(self):
        tokens = tokenize("a <= b <> c != d")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<=", "<>", "!="]

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing words\n")
        assert len([t for t in tokens if t.type is not TokenType.EOF]) == 2

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestParserExpressions:
    def test_precedence_and_or(self):
        select = parse_select("SELECT a = 1 OR b = 2 AND c = 3")
        expr = select.items[0].expr
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        select = parse_select("SELECT 1 + 2 * 3")
        expr = select.items[0].expr
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_parenthesised(self):
        select = parse_select("SELECT (1 + 2) * 3")
        expr = select.items[0].expr
        assert expr.op == "*"

    def test_unary_minus(self):
        select = parse_select("SELECT -x")
        assert isinstance(select.items[0].expr, ast.UnaryOp)

    def test_not_in(self):
        select = parse_select("SELECT a NOT IN (1, 2)")
        expr = select.items[0].expr
        assert isinstance(expr, ast.InList) and expr.negated

    def test_in_subquery(self):
        select = parse_select("SELECT a IN (SELECT b FROM t)")
        assert isinstance(select.items[0].expr, ast.InSubquery)

    def test_between(self):
        select = parse_select("SELECT x BETWEEN 1 AND 5")
        expr = select.items[0].expr
        assert isinstance(expr, ast.Between)

    def test_is_not_null(self):
        select = parse_select("SELECT x IS NOT NULL")
        expr = select.items[0].expr
        assert isinstance(expr, ast.IsNull) and expr.negated

    def test_like(self):
        select = parse_select("SELECT name LIKE 'a%'")
        assert isinstance(select.items[0].expr, ast.Like)

    def test_exists(self):
        select = parse_select("SELECT EXISTS (SELECT 1)")
        assert isinstance(select.items[0].expr, ast.Exists)

    def test_function_distinct(self):
        select = parse_select("SELECT COUNT(DISTINCT x)")
        expr = select.items[0].expr
        assert isinstance(expr, ast.FunctionCall) and expr.distinct

    def test_count_star(self):
        select = parse_select("SELECT COUNT(*)")
        expr = select.items[0].expr
        assert isinstance(expr.args[0], ast.Star)

    def test_qualified_column(self):
        select = parse_select("SELECT t.c FROM t")
        expr = select.items[0].expr
        assert expr.table == "t" and expr.name == "c"


class TestParserSelect:
    def test_full_clause_roundtrip(self):
        sql = (
            "SELECT a.x, COUNT(*) AS n FROM t1 a JOIN t2 b ON a.id = b.id "
            "WHERE a.x > 3 GROUP BY a.x HAVING COUNT(*) > 1 "
            "ORDER BY n DESC LIMIT 5"
        )
        select = parse_select(sql)
        assert select.joins[0].kind == "INNER"
        assert select.group_by and select.having is not None
        assert select.order_by[0].descending
        assert select.limit == 5
        # Rendering must re-parse to an identical AST.
        assert parse_select(select.render()) == select

    def test_comma_join_is_cross(self):
        select = parse_select("SELECT * FROM a, b")
        assert select.joins[0].kind == "CROSS"

    def test_left_join(self):
        select = parse_select("SELECT * FROM a LEFT JOIN b ON a.id = b.id")
        assert select.joins[0].kind == "LEFT"

    def test_alias_forms(self):
        select = parse_select("SELECT x AS y, z w FROM t AS u")
        assert select.items[0].alias == "y"
        assert select.items[1].alias == "w"
        assert select.from_table.alias == "u"

    def test_table_star(self):
        select = parse_select("SELECT t.* FROM t")
        assert isinstance(select.items[0].expr, ast.Star)
        assert select.items[0].expr.table == "t"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT x FROM t").distinct

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT x FROM t LIMIT 2.5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT 1 nonsense garbage FROM")

    def test_semicolon_allowed(self):
        assert parse_select("SELECT 1;") is not None


class TestParserOtherStatements:
    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE b (id INT PRIMARY KEY, aid INT REFERENCES a(id), "
            "name TEXT NOT NULL)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].references == ("a", "id")
        assert stmt.columns[2].not_null

    def test_insert_multi_row(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2
        assert stmt.columns == ("a", "b")

    def test_delete(self):
        stmt = parse_sql("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete) and stmt.where is not None

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_not_a_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("DROP TABLE t")

    def test_render_roundtrip_statements(self):
        for sql in [
            "INSERT INTO t (a) VALUES (1)",
            "DELETE FROM t WHERE (a = 1)",
            "UPDATE t SET a = 2",
            "CREATE TABLE t (a INT)",
        ]:
            stmt = parse_sql(sql)
            assert parse_sql(stmt.render()) == stmt
