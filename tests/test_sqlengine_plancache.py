"""Tests for the statement-plan cache: hits, invalidation, correctness."""

import pytest

from repro.sqlengine import Engine
from repro.sqlengine.plancache import LruCache, PlanCache

from tests.conftest import make_library_db


@pytest.fixture()
def engine():
    return Engine(make_library_db())


SQL = "SELECT name FROM author WHERE id = 2"


class TestLruCache:
    def test_get_put_roundtrip(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_evicts_least_recently_used(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)


class TestCacheHits:
    def test_repeat_select_hits_result_cache(self, engine):
        first = engine.execute(SQL)
        second = engine.execute(SQL)
        assert first.rows == second.rows
        assert engine.plan_cache.stats["result_hits"] == 1
        assert engine.plan_cache.stats["statement_hits"] == 1

    def test_repeat_skips_parse_and_plan(self, engine):
        engine.execute(SQL)
        parse_misses = engine.plan_cache.stats["statement_misses"]
        plan_misses = engine.plan_cache.stats["plan_misses"]
        engine.execute(SQL)
        assert engine.plan_cache.stats["statement_misses"] == parse_misses
        assert engine.plan_cache.stats["plan_misses"] == plan_misses

    def test_cached_result_is_isolated_copy(self, engine):
        first = engine.execute(SQL)
        first.rows.append(("tampered",))
        second = engine.execute(SQL)
        assert ("tampered",) not in second.rows

    def test_explain_shares_the_cache(self, engine):
        engine.execute(SQL)
        text = engine.explain(SQL)
        assert "Scan(author" in text

    def test_cache_disabled(self):
        engine = Engine(make_library_db(), use_plan_cache=False)
        assert engine.plan_cache is None
        assert engine.execute(SQL).rows == [("Stanislaw Lem",)]


class TestInvalidation:
    def test_insert_invalidates_results(self, engine):
        count = "SELECT COUNT(*) FROM author"
        assert engine.execute(count).scalar() == 4
        engine.execute("INSERT INTO author VALUES (9, 'New Author', 'usa', 1980)")
        assert engine.execute(count).scalar() == 5

    def test_update_invalidates_results(self, engine):
        assert engine.execute(SQL).scalar() == "Stanislaw Lem"
        engine.execute("UPDATE author SET name = 'S. Lem' WHERE id = 2")
        assert engine.execute(SQL).scalar() == "S. Lem"

    def test_delete_invalidates_results(self, engine):
        count = "SELECT COUNT(*) FROM loan"
        assert engine.execute(count).scalar() == 4
        engine.execute("DELETE FROM loan WHERE id = 1")
        assert engine.execute(count).scalar() == 3

    def test_create_table_leaves_unrelated_plans_valid(self, engine):
        # Fine-grained invalidation: adding a brand-new table cannot change
        # the plan of a statement that never touches it.
        engine.execute(SQL)
        version = engine.database.version
        engine.execute("CREATE TABLE extra (id INT PRIMARY KEY)")
        assert engine.database.version > version
        hit, _ = engine.plan_cache.plan(
            SQL, engine.database.table_version, columnar=engine.use_columnar
        )
        assert hit

    def test_drop_table_invalidates_its_plans(self, engine):
        engine.execute("SELECT COUNT(*) FROM loan")
        engine.database.drop_table("loan")
        hit, _ = engine.plan_cache.plan(
            "SELECT COUNT(*) FROM loan", engine.database.table_version
        )
        assert not hit

    def test_index_creation_invalidates_plans(self, engine):
        sql = "SELECT * FROM book WHERE year > 1970"
        plan_text = engine.explain(sql)
        assert "range=" not in plan_text
        engine.database.table("book").create_sorted_index("year")
        assert "range=year" in engine.explain(sql)

    def test_stale_entry_is_refreshed_not_reused(self, engine):
        engine.execute(SQL)
        engine.execute("INSERT INTO author VALUES (8, 'Another', 'uk', 1950)")
        # Re-executing after DML must re-plan (miss), then hit again.
        engine.execute(SQL)
        hits_before = engine.plan_cache.stats["result_hits"]
        engine.execute(SQL)
        assert engine.plan_cache.stats["result_hits"] == hits_before + 1


class TestCorrelatedSubqueries:
    def test_correlated_subquery_not_result_cached(self, engine):
        # The inner select depends on the outer row; it must be evaluated
        # per row, not served from the materialized-result cache.
        sql = (
            "SELECT a.name FROM author a WHERE EXISTS "
            "(SELECT 1 FROM book b WHERE b.author_id = a.id AND b.year > 1970)"
        )
        rows = engine.execute(sql).rows
        naive = Engine(engine.database, use_plan_cache=False).execute(sql).rows
        assert sorted(rows) == sorted(naive)
        # and repeating it stays correct
        assert sorted(engine.execute(sql).rows) == sorted(naive)


class TestPlanCacheUnit:
    def test_plan_none_is_a_valid_cached_value(self):
        cache = PlanCache()
        cache.store_plan("SELECT 1", {}, None)
        # An empty dependency set (table-less select) is valid forever.
        hit, plan = cache.plan("SELECT 1", lambda name: None)
        assert hit and plan is None

    def test_stamp_mismatch_misses(self):
        cache = PlanCache()
        cache.store_plan("q", {"t": 1}, None)
        hit, _ = cache.plan("q", {"t": 2}.get)
        assert not hit

    def test_only_dependent_tables_matter(self):
        cache = PlanCache()
        cache.store_plan("q", {"a": 3}, None)
        # b moved, a did not: still a hit.
        hit, _ = cache.plan("q", {"a": 3, "b": 99}.get)
        assert hit

    def test_dropped_table_never_hits(self):
        cache = PlanCache()
        cache.store_plan("q", {"a": 3}, None)
        hit, _ = cache.plan("q", lambda name: None)
        assert not hit

    def test_clear_resets(self):
        cache = PlanCache()
        cache.store_statement("q", object())
        cache.clear()
        assert len(cache) == 0
        assert cache.statement("q") is None
