"""Unit tests for schema objects, table storage, constraints and the catalog."""

import pytest

from repro.errors import (
    IntegrityError,
    SchemaError,
    UnknownTableError,
)
from repro.sqlengine import Column, Database, ForeignKey, SqlType, TableSchema
from repro.sqlengine.table import Table


def simple_schema(name="t", pk="id"):
    return TableSchema(
        name,
        [Column("id", SqlType.INT, nullable=False), Column("name", SqlType.TEXT)],
        primary_key=pk,
    )


class TestSchema:
    def test_identifiers_lowercased(self):
        schema = TableSchema("Ship", [Column("Name", SqlType.TEXT)])
        assert schema.name == "ship"
        assert schema.columns[0].name == "name"

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", SqlType.INT), Column("a", SqlType.TEXT)])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", SqlType.INT)], primary_key="b")

    def test_bad_identifier_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("1bad", [Column("a", SqlType.INT)])
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("has space", SqlType.INT)])

    def test_fk_must_reference_own_column(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", SqlType.INT)],
                foreign_keys=[ForeignKey("b", "x", "id")],
            )

    def test_column_lookup(self):
        schema = simple_schema()
        assert schema.column("NAME").sql_type is SqlType.TEXT
        assert schema.column_index("id") == 0
        assert schema.has_column("name")
        assert not schema.has_column("missing")
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_foreign_key_for(self):
        schema = TableSchema(
            "b",
            [Column("id", SqlType.INT), Column("aid", SqlType.INT)],
            foreign_keys=[ForeignKey("aid", "a", "id")],
        )
        fk = schema.foreign_key_for("aid")
        assert fk is not None and fk.ref_table == "a"
        assert schema.foreign_key_for("id") is None


class TestTable:
    def test_insert_mapping_and_sequence(self):
        table = Table(simple_schema())
        table.insert({"id": 1, "name": "a"})
        table.insert((2, "b"))
        assert len(table) == 2
        assert list(table.rows()) == [(1, "a"), (2, "b")]

    def test_insert_unknown_column_rejected(self):
        table = Table(simple_schema())
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "nope": "x"})

    def test_insert_wrong_arity_rejected(self):
        table = Table(simple_schema())
        with pytest.raises(SchemaError):
            table.insert((1, "a", "extra"))

    def test_not_null_enforced(self):
        table = Table(simple_schema())
        with pytest.raises(IntegrityError):
            table.insert({"name": "only"})

    def test_pk_uniqueness(self):
        table = Table(simple_schema())
        table.insert((1, "a"))
        with pytest.raises(IntegrityError):
            table.insert((1, "b"))

    def test_type_coercion_on_insert(self):
        table = Table(simple_schema())
        table.insert(("3", 42))
        assert list(table.rows()) == [(3, "42")]

    def test_delete_row_tombstones(self):
        table = Table(simple_schema())
        rid = table.insert((1, "a"))
        table.insert((2, "b"))
        assert table.delete_row(rid)
        assert not table.delete_row(rid)
        assert len(table) == 1
        assert list(table.rows()) == [(2, "b")]

    def test_pk_reusable_after_delete(self):
        table = Table(simple_schema())
        rid = table.insert((1, "a"))
        table.delete_row(rid)
        table.insert((1, "again"))
        assert len(table) == 1

    def test_lookup_equal_without_index(self):
        table = Table(simple_schema(pk=None))
        table.insert_many([(1, "x"), (2, "x"), (3, "y")])
        assert len(table.lookup_equal("name", "x")) == 2

    def test_lookup_equal_with_pk_index(self):
        table = Table(simple_schema())
        table.insert_many([(1, "x"), (2, "y")])
        assert table.lookup_equal("id", 2) == [(2, "y")]

    def test_column_values(self):
        table = Table(simple_schema())
        table.insert_many([(1, "x"), (2, "y")])
        assert list(table.column_values("name")) == ["x", "y"]


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table(simple_schema())
        assert db.has_table("T")
        assert db.table("t").name == "t"
        assert db.table_names == ["t"]

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(simple_schema())
        with pytest.raises(SchemaError):
            db.create_table(simple_schema())

    def test_unknown_table(self):
        db = Database()
        with pytest.raises(UnknownTableError):
            db.table("nope")
        with pytest.raises(UnknownTableError):
            db.drop_table("nope")

    def test_drop(self):
        db = Database()
        db.create_table(simple_schema())
        db.drop_table("t")
        assert not db.has_table("t")

    def test_fk_must_reference_existing_table(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema(
                    "b",
                    [Column("aid", SqlType.INT)],
                    foreign_keys=[ForeignKey("aid", "a", "id")],
                )
            )

    def test_fk_enforced_on_insert(self):
        db = Database()
        db.create_table(simple_schema("a"))
        db.create_table(
            TableSchema(
                "b",
                [Column("id", SqlType.INT), Column("aid", SqlType.INT)],
                primary_key="id",
                foreign_keys=[ForeignKey("aid", "a", "id")],
            )
        )
        db.insert("a", (1, "x"))
        db.insert("b", (1, 1))
        with pytest.raises(IntegrityError):
            db.insert("b", (2, 99))
        # The failed insert must not leave a phantom row behind.
        assert len(db.table("b")) == 1

    def test_fk_null_allowed(self):
        db = Database()
        db.create_table(simple_schema("a"))
        db.create_table(
            TableSchema(
                "b",
                [Column("id", SqlType.INT), Column("aid", SqlType.INT)],
                primary_key="id",
                foreign_keys=[ForeignKey("aid", "a", "id")],
            )
        )
        db.insert("b", (1, None))
        assert len(db.table("b")) == 1

    def test_check_integrity_sweep(self):
        db = Database(enforce_fk=False)
        db.create_table(simple_schema("a"))
        db.create_table(
            TableSchema(
                "b",
                [Column("id", SqlType.INT), Column("aid", SqlType.INT)],
                primary_key="id",
                foreign_keys=[ForeignKey("aid", "a", "id")],
            )
        )
        db.insert("b", (1, 99))
        problems = db.check_integrity()
        assert len(problems) == 1
        assert "99" in problems[0]

    def test_summary_mentions_tables(self, library_db):
        text = library_db.summary()
        assert "author" in text and "book" in text and "loan" in text
