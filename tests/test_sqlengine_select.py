"""Integration tests: SELECT execution over the library fixture database."""

import pytest

from repro.errors import (
    ExecutionError,
    PlanError,
    UnknownColumnError,
    UnknownTableError,
)


class TestProjection:
    def test_select_constant(self, engine):
        assert engine.execute("SELECT 1 + 1").scalar() == 2

    def test_select_star(self, engine):
        rs = engine.execute("SELECT * FROM author")
        assert rs.columns == ["id", "name", "country", "born"]
        assert len(rs) == 4

    def test_select_table_star_in_join(self, engine):
        rs = engine.execute(
            "SELECT b.* FROM book b JOIN author a ON b.author_id = a.id"
        )
        assert rs.columns == ["id", "title", "author_id", "year", "pages", "price"]

    def test_duplicate_column_names_qualified(self, engine):
        rs = engine.execute("SELECT * FROM book b JOIN author a ON b.author_id = a.id")
        assert "b.id" in rs.columns and "a.id" in rs.columns

    def test_alias(self, engine):
        rs = engine.execute("SELECT name AS who FROM author")
        assert rs.columns == ["who"]

    def test_expression_column_name(self, engine):
        rs = engine.execute("SELECT pages + 1 FROM book LIMIT 1")
        assert rs.columns == ["(pages + 1)"]

    def test_scalar_functions(self, engine):
        assert engine.execute(
            "SELECT UPPER(name) FROM author WHERE id = 2"
        ).scalar() == "STANISLAW LEM"
        assert engine.execute(
            "SELECT LENGTH(title) FROM book WHERE id = 3"
        ).scalar() == len("Solaris")


class TestWhere:
    def test_equality(self, engine):
        rs = engine.execute("SELECT title FROM book WHERE year = 1974")
        assert rs.rows == [("The Dispossessed",)]

    def test_comparison(self, engine):
        rs = engine.execute("SELECT COUNT(*) FROM book WHERE pages > 300")
        assert rs.scalar() == 2

    def test_and_or(self, engine):
        rs = engine.execute(
            "SELECT title FROM book WHERE year > 1970 AND pages < 300 OR id = 3"
        )
        titles = set(rs.column("title"))
        assert titles == {"Kindred", "Invisible Cities", "Solaris"}

    def test_not(self, engine):
        rs = engine.execute("SELECT COUNT(*) FROM author WHERE NOT country = 'usa'")
        assert rs.scalar() == 2

    def test_null_never_equal(self, engine):
        rs = engine.execute("SELECT title FROM book WHERE price = NULL")
        assert rs.rows == []

    def test_is_null(self, engine):
        rs = engine.execute("SELECT title FROM book WHERE price IS NULL")
        assert rs.rows == [("The Cyberiad",)]

    def test_is_not_null(self, engine):
        assert len(engine.execute("SELECT * FROM book WHERE price IS NOT NULL")) == 5

    def test_between(self, engine):
        rs = engine.execute("SELECT title FROM book WHERE year BETWEEN 1965 AND 1972")
        assert set(rs.column("title")) == {
            "The Left Hand of Darkness",
            "Invisible Cities",
            "The Cyberiad",
        }

    def test_in_list(self, engine):
        rs = engine.execute("SELECT name FROM author WHERE country IN ('poland', 'italy')")
        assert set(rs.column("name")) == {"Stanislaw Lem", "Italo Calvino"}

    def test_not_in_list(self, engine):
        rs = engine.execute("SELECT name FROM author WHERE id NOT IN (1, 2, 3)")
        assert rs.rows == [("Italo Calvino",)]

    def test_like(self, engine):
        rs = engine.execute("SELECT title FROM book WHERE title LIKE 'The %'")
        assert len(rs) == 3

    def test_like_underscore(self, engine):
        rs = engine.execute("SELECT name FROM author WHERE name LIKE '_talo%'")
        assert rs.rows == [("Italo Calvino",)]

    def test_unknown_column(self, engine):
        with pytest.raises(UnknownColumnError):
            engine.execute("SELECT nonexistent FROM author")

    def test_unknown_table(self, engine):
        with pytest.raises(UnknownTableError):
            engine.execute("SELECT * FROM missing")

    def test_division_by_zero(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT 1 / 0")


class TestJoins:
    def test_inner_join(self, engine):
        rs = engine.execute(
            "SELECT a.name, b.title FROM author a JOIN book b ON a.id = b.author_id "
            "WHERE a.country = 'poland' ORDER BY b.title"
        )
        assert rs.rows == [
            ("Stanislaw Lem", "Solaris"),
            ("Stanislaw Lem", "The Cyberiad"),
        ]

    def test_comma_join_with_where(self, engine):
        rs = engine.execute(
            "SELECT a.name FROM author a, book b "
            "WHERE a.id = b.author_id AND b.year = 1979"
        )
        assert rs.rows == [("Octavia Butler",)]

    def test_three_way_join(self, engine):
        rs = engine.execute(
            "SELECT DISTINCT a.name FROM author a "
            "JOIN book b ON a.id = b.author_id "
            "JOIN loan l ON l.book_id = b.id "
            "WHERE l.member = 'ada' ORDER BY a.name"
        )
        assert rs.rows == [("Stanislaw Lem",), ("Ursula Le Guin",)]

    def test_left_join_preserves_unmatched(self, engine):
        rs = engine.execute(
            "SELECT b.title, l.member FROM book b LEFT JOIN loan l ON l.book_id = b.id "
            "WHERE b.id = 2"
        )
        assert rs.rows == [("The Left Hand of Darkness", None)]

    def test_left_join_counts(self, engine):
        rs = engine.execute(
            "SELECT COUNT(*) FROM book b LEFT JOIN loan l ON l.book_id = b.id"
        )
        # 6 books; book 3 has two loans -> 7 rows
        assert rs.scalar() == 7

    def test_self_join(self, engine):
        rs = engine.execute(
            "SELECT x.name FROM author x, author y "
            "WHERE x.country = y.country AND x.id != y.id"
        )
        assert set(rs.column("name")) == {"Ursula Le Guin", "Octavia Butler"}

    def test_duplicate_binding_rejected(self, engine):
        with pytest.raises(PlanError):
            engine.execute("SELECT * FROM author, author")


class TestAggregates:
    def test_count_star(self, engine):
        assert engine.execute("SELECT COUNT(*) FROM book").scalar() == 6

    def test_count_column_skips_null(self, engine):
        assert engine.execute("SELECT COUNT(price) FROM book").scalar() == 5

    def test_count_distinct(self, engine):
        assert engine.execute("SELECT COUNT(DISTINCT country) FROM author").scalar() == 3

    def test_sum_avg(self, engine):
        assert engine.execute("SELECT SUM(pages) FROM book").scalar() == 1619
        avg = engine.execute("SELECT AVG(price) FROM book").scalar()
        assert avg == pytest.approx((9.99 + 8.50 + 7.25 + 10.00 + 6.75) / 5)

    def test_min_max(self, engine):
        rs = engine.execute("SELECT MIN(year), MAX(year) FROM book")
        assert rs.rows == [(1961, 1979)]

    def test_empty_group_returns_nulls(self, engine):
        rs = engine.execute("SELECT COUNT(*), SUM(pages) FROM book WHERE year > 2000")
        assert rs.rows == [(0, None)]

    def test_group_by(self, engine):
        rs = engine.execute(
            "SELECT a.country, COUNT(*) AS n FROM author a GROUP BY a.country "
            "ORDER BY n DESC, a.country"
        )
        assert rs.rows == [("usa", 2), ("italy", 1), ("poland", 1)]

    def test_group_by_with_join(self, engine):
        rs = engine.execute(
            "SELECT a.name, COUNT(*) AS books FROM author a "
            "JOIN book b ON b.author_id = a.id GROUP BY a.name ORDER BY a.name"
        )
        assert dict(rs.rows) == {
            "Italo Calvino": 1,
            "Octavia Butler": 1,
            "Stanislaw Lem": 2,
            "Ursula Le Guin": 2,
        }

    def test_having(self, engine):
        rs = engine.execute(
            "SELECT author_id FROM book GROUP BY author_id HAVING COUNT(*) > 1 "
            "ORDER BY author_id"
        )
        assert rs.rows == [(1,), (2,)]

    def test_having_without_group_rejected(self, engine):
        # HAVING over an implicit single group is accepted by the engine.
        rs = engine.execute("SELECT COUNT(*) FROM book HAVING COUNT(*) > 100")
        assert rs.rows == []

    def test_star_in_aggregate_query_rejected(self, engine):
        with pytest.raises(PlanError):
            engine.execute("SELECT *, COUNT(*) FROM book GROUP BY id")

    def test_aggregate_of_expression(self, engine):
        assert engine.execute("SELECT MAX(pages - 100) FROM book").scalar() == 287


class TestOrderLimitDistinct:
    def test_order_by_column(self, engine):
        rs = engine.execute("SELECT title FROM book ORDER BY year")
        assert rs.rows[0] == ("Solaris",)
        assert rs.rows[-1] == ("Kindred",)

    def test_order_by_desc(self, engine):
        rs = engine.execute("SELECT year FROM book ORDER BY year DESC LIMIT 2")
        assert rs.rows == [(1979,), (1974,)]

    def test_order_by_alias(self, engine):
        rs = engine.execute(
            "SELECT pages * 2 AS doubled FROM book ORDER BY doubled LIMIT 1"
        )
        assert rs.scalar() == 330

    def test_order_by_ordinal(self, engine):
        rs = engine.execute("SELECT title, year FROM book ORDER BY 2 LIMIT 1")
        assert rs.rows == [("Solaris", 1961)]

    def test_order_by_non_projected(self, engine):
        rs = engine.execute("SELECT title FROM book ORDER BY price DESC LIMIT 1")
        assert rs.rows == [("Kindred",)]

    def test_order_nulls_first_ascending(self, engine):
        rs = engine.execute("SELECT price FROM book ORDER BY price")
        assert rs.rows[0] == (None,)

    def test_multi_key_order(self, engine):
        rs = engine.execute(
            "SELECT country, name FROM author ORDER BY country DESC, name ASC"
        )
        assert rs.rows[0] == ("usa", "Octavia Butler")
        assert rs.rows[1] == ("usa", "Ursula Le Guin")

    def test_distinct(self, engine):
        rs = engine.execute("SELECT DISTINCT country FROM author ORDER BY country")
        assert rs.rows == [("italy",), ("poland",), ("usa",)]

    def test_limit_zero(self, engine):
        assert len(engine.execute("SELECT * FROM book LIMIT 0")) == 0

    def test_order_by_aggregate_in_group_query(self, engine):
        rs = engine.execute(
            "SELECT author_id FROM book GROUP BY author_id ORDER BY COUNT(*) DESC, author_id"
        )
        assert rs.rows[0] in ([(1,)], (1,)) or rs.rows[0] == (1,)


class TestSubqueries:
    def test_scalar_subquery(self, engine):
        rs = engine.execute(
            "SELECT title FROM book WHERE pages = (SELECT MAX(pages) FROM book)"
        )
        assert rs.rows == [("The Dispossessed",)]

    def test_in_subquery(self, engine):
        rs = engine.execute(
            "SELECT name FROM author WHERE id IN "
            "(SELECT author_id FROM book WHERE year < 1965)"
        )
        assert rs.rows == [("Stanislaw Lem",)]

    def test_not_in_subquery(self, engine):
        rs = engine.execute(
            "SELECT title FROM book WHERE id NOT IN (SELECT book_id FROM loan)"
        )
        assert set(rs.column("title")) == {
            "The Left Hand of Darkness",
            "Kindred",
            "The Cyberiad",
        }

    def test_exists_correlated(self, engine):
        rs = engine.execute(
            "SELECT a.name FROM author a WHERE EXISTS "
            "(SELECT 1 FROM book b WHERE b.author_id = a.id AND b.pages > 300) "
            "ORDER BY a.name"
        )
        assert rs.rows == [("Ursula Le Guin",)]

    def test_not_exists(self, engine):
        rs = engine.execute(
            "SELECT a.name FROM author a WHERE NOT EXISTS "
            "(SELECT 1 FROM book b WHERE b.author_id = a.id AND b.year > 1970)"
        )
        assert rs.rows == [("Stanislaw Lem",)]

    def test_correlated_scalar_subquery(self, engine):
        rs = engine.execute(
            "SELECT a.name, (SELECT COUNT(*) FROM book b WHERE b.author_id = a.id) "
            "AS n FROM author a ORDER BY a.name"
        )
        assert dict(rs.rows)["Stanislaw Lem"] == 2

    def test_scalar_subquery_multiple_rows_rejected(self, engine):
        with pytest.raises(ExecutionError):
            engine.execute("SELECT (SELECT year FROM book)")

    def test_nested_two_levels(self, engine):
        rs = engine.execute(
            "SELECT name FROM author WHERE id IN (SELECT author_id FROM book "
            "WHERE pages > (SELECT AVG(pages) FROM book))"
        )
        assert set(rs.column("name")) == {"Ursula Le Guin", "Stanislaw Lem"}


class TestResultSet:
    def test_pretty_contains_header(self, engine):
        text = engine.execute("SELECT name FROM author").pretty()
        assert "name" in text and "Ursula Le Guin" in text

    def test_pretty_truncates(self, engine):
        text = engine.execute("SELECT id FROM book").pretty(max_rows=2)
        assert "more rows" in text

    def test_to_dicts(self, engine):
        dicts = engine.execute("SELECT id, name FROM author WHERE id = 1").to_dicts()
        assert dicts == [{"id": 1, "name": "Ursula Le Guin"}]

    def test_answer_set_rounds_floats(self, engine):
        a = engine.execute("SELECT 0.1 + 0.2").answer_set()
        b = engine.execute("SELECT 0.3").answer_set()
        assert a == b
