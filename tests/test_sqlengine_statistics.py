"""Tests for incremental table statistics and selectivity estimates."""

import pytest

from repro.sqlengine import Database, Engine
from repro.sqlengine.statistics import DEFAULT_SELECTIVITY

from tests.conftest import make_library_db


@pytest.fixture()
def engine():
    return Engine(Database())


def setup_t(engine):
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, tag TEXT)")
    engine.execute(
        "INSERT INTO t VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'a'), (4, NULL, 'c')"
    )
    return engine.database.table("t")


class TestMaintenance:
    def test_row_count_tracks_inserts(self, engine):
        table = setup_t(engine)
        assert table.statistics.row_count == 4
        engine.execute("INSERT INTO t VALUES (5, 50, 'd')")
        assert table.statistics.row_count == 5

    def test_row_count_tracks_deletes(self, engine):
        table = setup_t(engine)
        engine.execute("DELETE FROM t WHERE tag = 'a'")
        assert table.statistics.row_count == 2

    def test_distinct_and_nulls(self, engine):
        table = setup_t(engine)
        tag = table.statistics.column("tag")
        assert tag.distinct == 3  # a, b, c
        assert table.statistics.column("v").null_count == 1

    def test_min_max_maintained_on_insert(self, engine):
        table = setup_t(engine)
        v = table.statistics.column("v")
        assert (v.min_value, v.max_value) == (10, 30)
        engine.execute("INSERT INTO t VALUES (5, 99, 'z')")
        assert v.max_value == 99

    def test_min_max_recomputed_after_extremum_delete(self, engine):
        table = setup_t(engine)
        engine.execute("DELETE FROM t WHERE v = 30")
        v = table.statistics.column("v")
        assert v.max_value == 20
        engine.execute("DELETE FROM t WHERE v = 10")
        assert v.min_value == 20

    def test_update_moves_counts(self, engine):
        table = setup_t(engine)
        engine.execute("UPDATE t SET tag = 'z' WHERE id = 2")
        tag = table.statistics.column("tag")
        assert tag.frequency("b") == 0
        assert tag.frequency("z") == 1
        assert table.statistics.row_count == 4

    def test_frequency_exact(self, engine):
        table = setup_t(engine)
        assert table.statistics.column("tag").frequency("a") == 2
        assert table.statistics.column("tag").frequency("missing") == 0

    def test_database_accessor(self):
        db = make_library_db()
        assert db.statistics("author").row_count == 4

    def test_describe_mentions_columns(self, engine):
        table = setup_t(engine)
        text = table.statistics.describe()
        assert "4 rows" in text and "tag" in text


class TestSelectivity:
    def test_eq_uses_exact_histogram(self, engine):
        table = setup_t(engine)
        assert table.statistics.eq_selectivity("tag", "a") == pytest.approx(0.5)
        assert table.statistics.eq_selectivity("tag", "missing") == 0.0

    def test_eq_null_never_matches(self, engine):
        table = setup_t(engine)
        assert table.statistics.eq_selectivity("v", None) == 0.0

    def test_in_sums_and_caps(self, engine):
        table = setup_t(engine)
        sel = table.statistics.in_selectivity("tag", ["a", "b"])
        assert sel == pytest.approx(0.75)
        assert table.statistics.in_selectivity("tag", ["a", "b", "c", "a"]) <= 1.0

    def test_range_interpolates(self, engine):
        table = setup_t(engine)
        # v spans 10..30; "> 20" covers half the span.
        sel = table.statistics.range_selectivity("v", ">", 20)
        assert 0.0 <= sel <= 1.0
        assert sel == pytest.approx(0.5)

    def test_range_clamps_out_of_bounds(self, engine):
        table = setup_t(engine)
        assert table.statistics.range_selectivity("v", ">", 1000) == 0.0
        assert table.statistics.range_selectivity("v", "<", 1000) == 1.0

    def test_text_range_falls_back(self, engine):
        table = setup_t(engine)
        sel = table.statistics.range_selectivity("tag", ">", "a")
        assert sel == pytest.approx(DEFAULT_SELECTIVITY)

    def test_empty_table_selectivity_zero(self, engine):
        engine.execute("CREATE TABLE e (id INT PRIMARY KEY)")
        stats = engine.database.statistics("e")
        assert stats.eq_selectivity("id", 1) == 0.0


class TestVersionCounter:
    def test_ddl_and_dml_bump(self, engine):
        v0 = engine.database.version
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        v1 = engine.database.version
        assert v1 > v0
        engine.execute("INSERT INTO t VALUES (1)")
        v2 = engine.database.version
        assert v2 > v1
        engine.execute("UPDATE t SET id = 2")
        v3 = engine.database.version
        assert v3 > v2
        engine.execute("DELETE FROM t")
        assert engine.database.version > v3

    def test_select_does_not_bump(self, engine):
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        before = engine.database.version
        engine.execute("SELECT * FROM t")
        assert engine.database.version == before

    def test_index_creation_bumps(self, engine):
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        before = engine.database.version
        engine.database.table("t").create_hash_index("v")
        assert engine.database.version > before
