"""Tests for incremental table statistics and selectivity estimates."""

import pytest

from repro.sqlengine import (
    Column,
    Database,
    Engine,
    ForeignKey,
    SqlType,
    TableSchema,
)
from repro.sqlengine.statistics import (
    MCV_ENTRIES,
    ColumnStats,
    _build_histogram,
    estimate_equi_join_rows,
)

from tests.conftest import make_library_db


@pytest.fixture()
def engine():
    return Engine(Database())


def setup_t(engine):
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, tag TEXT)")
    engine.execute(
        "INSERT INTO t VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'a'), (4, NULL, 'c')"
    )
    return engine.database.table("t")


class TestMaintenance:
    def test_row_count_tracks_inserts(self, engine):
        table = setup_t(engine)
        assert table.statistics.row_count == 4
        engine.execute("INSERT INTO t VALUES (5, 50, 'd')")
        assert table.statistics.row_count == 5

    def test_row_count_tracks_deletes(self, engine):
        table = setup_t(engine)
        engine.execute("DELETE FROM t WHERE tag = 'a'")
        assert table.statistics.row_count == 2

    def test_distinct_and_nulls(self, engine):
        table = setup_t(engine)
        tag = table.statistics.column("tag")
        assert tag.distinct == 3  # a, b, c
        assert table.statistics.column("v").null_count == 1

    def test_min_max_maintained_on_insert(self, engine):
        table = setup_t(engine)
        v = table.statistics.column("v")
        assert (v.min_value, v.max_value) == (10, 30)
        engine.execute("INSERT INTO t VALUES (5, 99, 'z')")
        assert v.max_value == 99

    def test_min_max_recomputed_after_extremum_delete(self, engine):
        table = setup_t(engine)
        engine.execute("DELETE FROM t WHERE v = 30")
        v = table.statistics.column("v")
        assert v.max_value == 20
        engine.execute("DELETE FROM t WHERE v = 10")
        assert v.min_value == 20

    def test_update_moves_counts(self, engine):
        table = setup_t(engine)
        engine.execute("UPDATE t SET tag = 'z' WHERE id = 2")
        tag = table.statistics.column("tag")
        assert tag.frequency("b") == 0
        assert tag.frequency("z") == 1
        assert table.statistics.row_count == 4

    def test_frequency_exact(self, engine):
        table = setup_t(engine)
        assert table.statistics.column("tag").frequency("a") == 2
        assert table.statistics.column("tag").frequency("missing") == 0

    def test_database_accessor(self):
        db = make_library_db()
        assert db.statistics("author").row_count == 4

    def test_describe_mentions_columns(self, engine):
        table = setup_t(engine)
        text = table.statistics.describe()
        assert "4 rows" in text and "tag" in text


class TestSelectivity:
    def test_eq_uses_exact_histogram(self, engine):
        table = setup_t(engine)
        assert table.statistics.eq_selectivity("tag", "a") == pytest.approx(0.5)
        assert table.statistics.eq_selectivity("tag", "missing") == 0.0

    def test_eq_null_never_matches(self, engine):
        table = setup_t(engine)
        assert table.statistics.eq_selectivity("v", None) == 0.0

    def test_in_sums_and_caps(self, engine):
        table = setup_t(engine)
        sel = table.statistics.in_selectivity("tag", ["a", "b"])
        assert sel == pytest.approx(0.75)
        assert table.statistics.in_selectivity("tag", ["a", "b", "c", "a"]) <= 1.0

    def test_range_counts_histogram_rows(self, engine):
        table = setup_t(engine)
        # v holds {10, 20, 30} plus one NULL: exactly one of four rows
        # satisfies "> 20" (the NULL row satisfies nothing).
        sel = table.statistics.range_selectivity("v", ">", 20)
        assert 0.0 <= sel <= 1.0
        assert sel == pytest.approx(0.25)

    def test_range_clamps_out_of_bounds(self, engine):
        table = setup_t(engine)
        assert table.statistics.range_selectivity("v", ">", 1000) == 0.0
        # "< 1000" matches every non-null v: 3 of 4 rows.
        assert table.statistics.range_selectivity("v", "<", 1000) == pytest.approx(
            0.75
        )

    def test_text_range_estimates_from_histogram(self, engine):
        table = setup_t(engine)
        # tags are {a: 2, b: 1, c: 1}; strictly above 'a' leaves b and c.
        sel = table.statistics.range_selectivity("tag", ">", "a")
        assert sel == pytest.approx(0.5)

    def test_empty_table_selectivity_zero(self, engine):
        engine.execute("CREATE TABLE e (id INT PRIMARY KEY)")
        stats = engine.database.statistics("e")
        assert stats.eq_selectivity("id", 1) == 0.0


class TestHistogram:
    """Equi-depth histogram construction and row estimates."""

    @staticmethod
    def _counts(values):
        counts = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        return counts

    def test_small_domains_are_all_mcv(self):
        hist = _build_histogram(self._counts([1, 1, 2, 3]))
        assert hist.mcv == {1: 2, 2: 1, 3: 1}
        assert hist.buckets == []

    def test_uniform_data_has_no_mcvs_and_even_depths(self):
        hist = _build_histogram(self._counts(range(640)), n_buckets=32)
        assert hist.mcv == {}
        bounds = hist.bucket_bounds()
        assert len(bounds) == 32
        depths = [rows for _, _, rows, _ in bounds]
        # Equi-depth: 640 uniform values over 32 buckets → 20 rows each.
        assert all(d == 20 for d in depths)
        # Buckets are sorted and non-overlapping.
        for (_, high, _, _), (low, _, _, _) in zip(bounds, bounds[1:]):
            assert high < low

    def test_skewed_data_promotes_heavy_hitters_to_mcv(self):
        values = [0] * 500 + [1] * 300 + list(range(2, 102))
        hist = _build_histogram(self._counts(values))
        assert hist.mcv[0] == 500 and hist.mcv[1] == 300
        assert hist.eq_rows(0) == 500.0  # MCV answers are exact
        # Bucketed tail: estimate within a factor of the truth (1 row).
        assert 0.0 < hist.eq_rows(50) <= 10.0

    def test_unsortable_values_yield_none(self):
        assert _build_histogram({1: 1, "x": 1}) is None

    def test_eq_outside_all_buckets_is_zero(self):
        hist = _build_histogram(self._counts(range(100)))
        assert hist.eq_rows(-5) == 0.0
        assert hist.eq_rows(1000) == 0.0

    def test_cmp_rows_bounds_and_complement(self):
        hist = _build_histogram(self._counts(range(100)))
        total = hist.total_rows
        for probe in (0, 17, 50, 99):
            below = hist.cmp_rows("<=", probe)
            above = hist.cmp_rows(">", probe)
            assert below + above == pytest.approx(total)
            # Interpolated estimate stays within one bucket of the truth.
            assert below == pytest.approx(probe + 1, abs=total / 16)

    def test_between_rows_matches_difference(self):
        hist = _build_histogram(self._counts(range(100)))
        est = hist.between_rows(20, 40)
        assert est == pytest.approx(21, abs=hist.total_rows / 16)
        assert hist.between_rows(40, 20) == 0.0

    def test_range_error_vs_exact_counts_on_skew(self, engine):
        # Zipf-ish data: estimator error must stay within 10% of the
        # table for every decile probe, eq error within 5%.
        engine.execute("CREATE TABLE z (id INT PRIMARY KEY, v INT)")
        values = []
        for v in range(1, 200):
            values.extend([v] * (1 + 2000 // v))
        rows = ", ".join(f"({i}, {v})" for i, v in enumerate(values))
        engine.execute(f"INSERT INTO z VALUES {rows}")
        stats = engine.database.table("z").statistics
        n = len(values)
        for probe in range(10, 200, 20):
            truth = sum(1 for v in values if v > probe) / n
            est = stats.range_selectivity("v", ">", probe)
            assert abs(est - truth) <= 0.10
            eq_truth = sum(1 for v in values if v == probe) / n
            eq_est = stats.eq_selectivity("v", probe)
            assert abs(eq_est - eq_truth) <= 0.05

    def test_null_heavy_column_estimates_over_all_rows(self, engine):
        engine.execute("CREATE TABLE n (id INT PRIMARY KEY, v INT)")
        rows = ", ".join(
            f"({i}, {i if i % 4 == 0 else 'NULL'})" for i in range(100)
        )
        engine.execute(f"INSERT INTO n VALUES {rows}")
        stats = engine.database.table("n").statistics
        # 25 non-null values 0,4,...,96; half are < 48 → 13/100 rows.
        sel = stats.range_selectivity("v", "<", 48)
        assert sel == pytest.approx(0.12, abs=0.03)
        assert stats.column("v").null_count == 75

    def test_histogram_rebuilds_after_mutation(self, engine):
        table = setup_t(engine)
        stats = table.statistics
        assert stats.range_selectivity("v", ">", 25) == pytest.approx(0.25)
        engine.execute("INSERT INTO t VALUES (5, 40, 'd'), (6, 50, 'e')")
        assert stats.range_selectivity("v", ">", 25) == pytest.approx(3 / 6)


class TestCompression:
    """Bounded-memory mode once a column exceeds max_tracked distincts."""

    @pytest.fixture(autouse=True)
    def small_cap(self, monkeypatch):
        monkeypatch.setattr(ColumnStats, "max_tracked", 64)

    def test_compression_bounds_tracked_values(self):
        col = ColumnStats()
        for v in range(200):
            col.add(v)
        assert col.compressed
        assert len(col._counts) <= MCV_ENTRIES
        # Distinct estimate survives compression.
        assert col.distinct == pytest.approx(200, rel=0.35)
        assert (col.min_value, col.max_value) == (0, 199)

    def test_compressed_add_remove_adjust_estimates(self):
        col = ColumnStats()
        for v in range(100):
            col.add(v)
        assert col.compressed
        before = col.distinct
        for v in range(100, 150):
            col.add(v)
        assert col.distinct > before
        assert col.max_value == 149
        for v in range(100, 150):
            col.remove(v)
        assert col.distinct == pytest.approx(before, rel=0.35)
        assert col.non_null_count == 100

    def test_compressed_frequency_is_estimate(self):
        col = ColumnStats()
        for _ in range(50):
            col.add(-1)
        for v in range(100):
            col.add(v)
        assert col.compressed
        assert col.frequency(-1) == 50  # heavy hitter stays MCV-exact
        assert col.frequency(3) >= 0
        assert col.frequency(None) == 0

    def test_unsortable_domain_declines_to_compress(self):
        col = ColumnStats()
        for _ in range(50):
            col.add("hot")  # str mixed with ints below: unsortable
        for v in range(100):
            col.add(v)
        assert not col.compressed  # exact substrate kept; still correct
        assert col.frequency("hot") == 50

    def test_clone_of_compressed_column_is_independent(self):
        col = ColumnStats()
        for v in range(100):
            col.add(v)
        assert col.compressed
        twin = col.clone()
        assert twin.compressed
        assert twin._counts is twin.histogram().mcv  # aliasing invariant
        col.add(500)
        col.add(500)
        assert twin.max_value == 99
        assert twin.frequency(500) == 0


class TestJoinCardinality:
    def test_distinct_scales_the_product(self):
        assert estimate_equi_join_rows(1000, 50, 50, 50) == pytest.approx(1000)
        assert estimate_equi_join_rows(1000, 50, 1000, 50) == pytest.approx(50)

    def test_unknown_distincts_fall_back_to_max(self):
        assert estimate_equi_join_rows(1000, 50, None, None) == 1000
        assert estimate_equi_join_rows(10, 50, 0, 0) == 50

    def test_fk_join_estimates_child_rows(self, engine):
        # Classic PK–FK join: |child ⋈ parent| ≈ |child|.
        db = engine.database
        db.create_table(
            TableSchema(
                "parent",
                [Column("id", SqlType.INT), Column("name", SqlType.TEXT)],
                primary_key="id",
            )
        )
        db.create_table(
            TableSchema(
                "child",
                [Column("id", SqlType.INT), Column("parent_id", SqlType.INT)],
                primary_key="id",
                foreign_keys=[ForeignKey("parent_id", "parent", "id")],
            )
        )
        engine.execute(
            "INSERT INTO parent VALUES "
            + ", ".join(f"({i}, 'p{i}')" for i in range(10))
        )
        engine.execute(
            "INSERT INTO child VALUES "
            + ", ".join(f"({i}, {i % 10})" for i in range(200))
        )
        db = engine.database
        left = db.statistics("child")
        right = db.statistics("parent")
        est = estimate_equi_join_rows(
            left.row_count,
            right.row_count,
            left.column_distinct("parent_id"),
            right.column_distinct("id"),
        )
        assert est == pytest.approx(200)


class TestMaintenanceInvariants:
    def test_clone_isolated_from_source(self, engine):
        table = setup_t(engine)
        stats = table.statistics
        twin = stats.clone()
        engine.execute("INSERT INTO t VALUES (5, 99, 'z')")
        assert stats.row_count == 5 and twin.row_count == 4
        assert twin.column("v").max_value == 30
        assert twin.column("tag").frequency("z") == 0

    def test_on_update_keeps_histogram_current(self, engine):
        table = setup_t(engine)
        stats = table.statistics
        assert stats.eq_selectivity("v", 10) == pytest.approx(0.25)
        engine.execute("UPDATE t SET v = 10 WHERE id = 2")
        assert stats.eq_selectivity("v", 10) == pytest.approx(0.5)
        assert stats.eq_selectivity("v", 20) == 0.0

    def test_stats_version_bumps_on_mutations(self, engine):
        table = setup_t(engine)
        stats = table.statistics
        v0 = stats.version
        engine.execute("INSERT INTO t VALUES (5, 50, 'd')")
        v1 = stats.version
        assert v1 > v0
        engine.execute("UPDATE t SET v = 51 WHERE id = 5")
        v2 = stats.version
        assert v2 > v1
        engine.execute("DELETE FROM t WHERE id = 5")
        assert stats.version > v2


class TestVersionCounter:
    def test_ddl_and_dml_bump(self, engine):
        v0 = engine.database.version
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        v1 = engine.database.version
        assert v1 > v0
        engine.execute("INSERT INTO t VALUES (1)")
        v2 = engine.database.version
        assert v2 > v1
        engine.execute("UPDATE t SET id = 2")
        v3 = engine.database.version
        assert v3 > v2
        engine.execute("DELETE FROM t")
        assert engine.database.version > v3

    def test_select_does_not_bump(self, engine):
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        before = engine.database.version
        engine.execute("SELECT * FROM t")
        assert engine.database.version == before

    def test_index_creation_bumps(self, engine):
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        before = engine.database.version
        engine.database.table("t").create_hash_index("v")
        assert engine.database.version > before
