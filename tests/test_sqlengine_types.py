"""Unit tests for SQL value types, coercion and comparison."""

import pytest

from repro.errors import TypeMismatchError
from repro.sqlengine.types import (
    SqlType,
    coerce_value,
    compare_values,
    infer_type,
    is_numeric,
    is_valid,
    sort_key,
)


class TestCoercion:
    def test_none_passes_any_type(self):
        for sql_type in SqlType:
            assert coerce_value(None, sql_type) is None

    def test_int_from_int(self):
        assert coerce_value(7, SqlType.INT) == 7

    def test_int_from_integral_float(self):
        assert coerce_value(7.0, SqlType.INT) == 7

    def test_int_from_fractional_float_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(7.5, SqlType.INT)

    def test_int_from_string(self):
        assert coerce_value(" 42 ", SqlType.INT) == 42

    def test_int_from_bad_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("forty", SqlType.INT)

    def test_bool_not_valid_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, SqlType.INT)

    def test_float_from_int_widens(self):
        value = coerce_value(3, SqlType.FLOAT)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_from_string(self):
        assert coerce_value("2.5", SqlType.FLOAT) == 2.5

    def test_text_from_number(self):
        assert coerce_value(12, SqlType.TEXT) == "12"

    def test_text_from_text(self):
        assert coerce_value("abc", SqlType.TEXT) == "abc"

    def test_bool_from_strings(self):
        assert coerce_value("yes", SqlType.BOOL) is True
        assert coerce_value("F", SqlType.BOOL) is False

    def test_bool_from_int(self):
        assert coerce_value(1, SqlType.BOOL) is True
        assert coerce_value(0, SqlType.BOOL) is False

    def test_bool_from_other_int_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(2, SqlType.BOOL)


class TestValidityAndInference:
    def test_is_valid_accepts_matching(self):
        assert is_valid(3, SqlType.INT)
        assert is_valid("x", SqlType.TEXT)
        assert is_valid(None, SqlType.BOOL)

    def test_bool_is_not_valid_numeric(self):
        assert not is_valid(True, SqlType.INT)
        assert not is_valid(True, SqlType.FLOAT)

    def test_int_valid_as_float(self):
        assert is_valid(3, SqlType.FLOAT)

    def test_infer(self):
        assert infer_type(True) is SqlType.BOOL
        assert infer_type(1) is SqlType.INT
        assert infer_type(1.5) is SqlType.FLOAT
        assert infer_type("s") is SqlType.TEXT

    def test_infer_rejects_other(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1])

    def test_is_numeric(self):
        assert is_numeric(SqlType.INT)
        assert is_numeric(SqlType.FLOAT)
        assert not is_numeric(SqlType.TEXT)


class TestComparison:
    def test_null_is_unknown(self):
        assert compare_values(None, 1) is None
        assert compare_values("a", None) is None

    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1, 2.5) == -1
        assert compare_values(3.5, 2) == 1

    def test_strings(self):
        assert compare_values("abc", "abd") == -1
        assert compare_values("b", "b") == 0

    def test_mixed_types_raise(self):
        with pytest.raises(TypeMismatchError):
            compare_values("1", 1)

    def test_bool_comparison(self):
        assert compare_values(False, True) == -1

    def test_bool_vs_int_raises(self):
        with pytest.raises(TypeMismatchError):
            compare_values(True, 1)


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, None, 1]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, 1, 3]

    def test_mixed_numeric(self):
        values = [2.5, 1, 3]
        assert sorted(values, key=sort_key) == [1, 2.5, 3]

    def test_strings_after_numbers(self):
        # A stable cross-type order exists (needed for ORDER BY robustness).
        values = ["b", 2, None, "a"]
        assert sorted(values, key=sort_key) == [None, 2, "a", "b"]

    def test_equality(self):
        assert sort_key(5) == sort_key(5)
        assert not sort_key(5) == sort_key(6)
