"""Crash recovery for the durable storage layer (WAL + checkpoints).

The contract under test (see docs/storage.md):

* recovery = newest valid checkpoint + replay of the committed WAL
  tail, and it is idempotent — recovering the same directory twice
  yields the same database;
* a torn WAL tail (crash mid-record) loses only the torn record's
  group, never an earlier committed one;
* a transaction group without its commit marker — the crash happened
  before COMMIT's fsync — is never replayed;
* a checkpoint interrupted mid-write (a ``*.tmp`` file, or a garbled
  newest checkpoint) falls back to the previous checkpoint, whose WAL
  segments are still on disk;
* files written by a *newer* format version raise
  :class:`~repro.errors.StorageError` instead of being silently skipped;
* the checkpoint cadence rotates the WAL and prunes superseded files.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import StorageError
from repro.sqlengine import Database, Engine
from repro.storage import (
    StorageManager,
    WriteAheadLog,
    load_checkpoint,
    read_wal,
    restore_checkpoint,
    write_checkpoint,
)


def _engine() -> Engine:
    engine = Engine(Database())
    engine.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, v INT)"
    )
    for i in range(5):
        engine.execute(f"INSERT INTO items VALUES ({i}, 'n{i}', {i * 10})")
    return engine


def _manager(engine: Engine, data_dir, **kwargs) -> StorageManager:
    manager = StorageManager(engine, data_dir, **kwargs)
    manager.recover()
    manager.attach()
    return manager


def _rows(engine: Engine) -> set:
    return set(engine.execute("SELECT * FROM items").rows)


class TestWalFormat:
    def test_committed_groups_replay_in_commit_order(self, tmp_path):
        path = tmp_path / "wal-00000001.jsonl"
        wal = WriteAheadLog(path, 1)
        wal.append_group(0, ["INSERT 1"])
        wal.append_group(1, ["INSERT 2", "INSERT 3"])
        wal.close()
        assert read_wal(path) == ["INSERT 1", "INSERT 2", "INSERT 3"]

    def test_torn_tail_loses_only_the_torn_group(self, tmp_path):
        path = tmp_path / "wal-00000001.jsonl"
        wal = WriteAheadLog(path, 1)
        wal.append_group(0, ["INSERT 1"])
        wal.append_group(1, ["INSERT 2"])
        wal.close()
        # Crash mid-write: the last line (commit marker of group 1) is
        # half on disk.
        torn = path.read_bytes()[:-7]
        path.write_bytes(torn)
        assert read_wal(path) == ["INSERT 1"]

    def test_group_without_commit_marker_is_not_replayed(self, tmp_path):
        path = tmp_path / "wal-00000001.jsonl"
        wal = WriteAheadLog(path, 1)
        wal.append_group(0, ["INSERT 1"])
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"txn": 1, "sql": "INSERT 2"}) + "\n")
        assert read_wal(path) == ["INSERT 1"]

    def test_missing_or_garbled_header_yields_nothing(self, tmp_path):
        path = tmp_path / "wal-00000001.jsonl"
        path.write_text("this is not a wal\n", encoding="utf-8")
        assert read_wal(path) == []

    def test_newer_format_raises(self, tmp_path):
        path = tmp_path / "wal-00000001.jsonl"
        path.write_text(
            json.dumps({"magic": "repro-wal", "format": 99, "seq": 1}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(StorageError):
            read_wal(path)


class TestCheckpointFormat:
    def test_round_trip_preserves_schema_and_indexes(self, tmp_path):
        engine = _engine()
        db = engine.database
        db.table("items").create_hash_index("name")
        db.table("items").create_sorted_index("v")
        path = tmp_path / "checkpoint-00000001.json"
        with db.snapshot() as snap:
            write_checkpoint(path, snap, 1)
        target = Engine(Database())
        restored = restore_checkpoint(target.database, load_checkpoint(path))
        assert restored == 5
        assert _rows(target) == _rows(engine)
        items = target.database.table("items")
        assert "name" in items._hash_indexes
        assert "v" in items._sorted_indexes
        assert items.schema.primary_key == "id"

    def test_newer_format_raises(self, tmp_path):
        path = tmp_path / "checkpoint-00000001.json"
        path.write_text(
            json.dumps({"magic": "repro-checkpoint", "format": 99, "seq": 1}),
            encoding="utf-8",
        )
        with pytest.raises(StorageError):
            load_checkpoint(path)

    def test_garbage_raises_value_error(self, tmp_path):
        path = tmp_path / "checkpoint-00000001.json"
        path.write_text('{"magic": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_checkpoint(path)


class TestRecovery:
    def test_first_boot_writes_initial_checkpoint(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path)
        report = manager.last_recovery
        assert not report.recovered
        assert (tmp_path / "checkpoint-00000001.json").exists()
        manager.close()

    def test_crash_recovery_restores_committed_state(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path)
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        engine.execute("BEGIN")
        engine.execute("INSERT INTO items VALUES (11, 'eleven', 110)")
        engine.execute("COMMIT")
        engine.execute("BEGIN")
        engine.execute("INSERT INTO items VALUES (99, 'ghost', 990)")
        expected = _rows(engine) - {(99, "ghost", 990)}
        del manager  # crash: no close(), the open transaction vanishes

        fresh = Engine(Database())
        manager2 = _manager(fresh, tmp_path)
        report = manager2.last_recovery
        assert report.recovered
        assert report.replay_errors == 0
        assert _rows(fresh) == expected
        manager2.close()

    def test_recovery_is_idempotent(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path)
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        engine.execute("UPDATE items SET v = v + 1 WHERE id = 0")
        expected = _rows(engine)
        del manager

        for _ in range(3):
            fresh = Engine(Database())
            manager = _manager(fresh, tmp_path)
            assert _rows(fresh) == expected
            del manager

    def test_interrupted_checkpoint_tmp_file_is_ignored(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path)
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        expected = _rows(engine)
        del manager
        # A checkpoint that crashed mid-write leaves only a *.tmp.
        (tmp_path / "checkpoint-00000009.json.tmp").write_text(
            '{"half": "written', encoding="utf-8"
        )
        fresh = Engine(Database())
        manager = _manager(fresh, tmp_path)
        assert _rows(fresh) == expected
        # Recovery's collapse pruned the leftover temp file.
        assert not list(tmp_path.glob("*.tmp"))
        manager.close()

    def test_corrupt_newest_checkpoint_falls_back_to_older(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path)
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        # Keep copies of the first checkpoint generation: a real crash
        # between the new checkpoint's rename and the prune leaves both
        # generations on disk.
        saved = {p.name: p.read_bytes() for p in tmp_path.iterdir()}
        seq = manager.checkpoint()
        engine.execute("INSERT INTO items VALUES (11, 'eleven', 110)")
        expected = _rows(engine)
        del manager
        # The newest checkpoint is garbled (torn disk write); the older
        # generation survives, and its WAL chain replays right through
        # the segments the bad checkpoint would have superseded.
        (tmp_path / f"checkpoint-{seq:08d}.json").write_text(
            '{"torn', encoding="utf-8"
        )
        for name, data in saved.items():
            (tmp_path / name).write_bytes(data)
        fresh = Engine(Database())
        manager = _manager(fresh, tmp_path)
        assert manager.last_recovery.replay_errors == 0
        assert _rows(fresh) == expected
        manager.close()

    def test_pruned_checkpoint_mid_restore_retries_against_rescan(
        self, tmp_path, monkeypatch
    ):
        import repro.storage.manager as manager_mod

        engine = _engine()
        manager = _manager(engine, tmp_path)
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        expected = _rows(engine)
        del manager
        # Simulate the cluster writer checkpointing + pruning between the
        # restore's directory scan and its read of the newest checkpoint:
        # the first load sees a vanished file, the rescan a whole chain.
        # A vanished file must trigger that rescan — falling back like a
        # corrupt checkpoint would "succeed" with only the WAL tail
        # replayed over an empty base.
        real_load = manager_mod.load_checkpoint
        calls = {"n": 0}

        def flaky_load(path):
            calls["n"] += 1
            if calls["n"] == 1:
                raise FileNotFoundError(path)
            return real_load(path)

        monkeypatch.setattr(manager_mod, "load_checkpoint", flaky_load)
        fresh = Engine(Database())
        report = manager_mod.restore_database(fresh, tmp_path)
        assert calls["n"] >= 2
        assert report.checkpoint_seq is not None
        assert _rows(fresh) == expected

    def test_restore_gives_up_when_chain_keeps_vanishing(
        self, tmp_path, monkeypatch
    ):
        import repro.storage.manager as manager_mod

        engine = _engine()
        manager = _manager(engine, tmp_path)
        del manager

        def always_gone(path):
            raise FileNotFoundError(path)

        monkeypatch.setattr(manager_mod, "load_checkpoint", always_gone)
        with pytest.raises(StorageError, match="shifting underfoot"):
            manager_mod.restore_database(
                Engine(Database()), tmp_path, attempts=2
            )

    def test_replay_alone_rebuilds_without_any_checkpoint(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path)
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        expected = _rows(engine)
        del manager
        for path in tmp_path.glob("checkpoint-*.json"):
            path.unlink()
        # The seed CREATE/INSERTs predate the manager, so they live only
        # in the (deleted) checkpoint; an engine built from the same seed
        # replays the WAL tail over it.
        fresh = _engine()
        manager = _manager(fresh, tmp_path)
        assert _rows(fresh) == expected
        manager.close()


class TestCadenceAndLifecycle:
    def test_checkpoint_cadence_rotates_and_prunes(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path, checkpoint_every=3)
        for i in range(10, 17):
            engine.execute(f"INSERT INTO items VALUES ({i}, 'x{i}', {i})")
        assert manager.stats()["checkpoints_written"] >= 2
        checkpoints = sorted(tmp_path.glob("checkpoint-*.json"))
        assert len(checkpoints) == 1, "superseded checkpoints must be pruned"
        wals = sorted(tmp_path.glob("wal-*.jsonl"))
        assert all(
            w.name.split("-")[1].split(".")[0]
            >= checkpoints[0].name.split("-")[1].split(".")[0]
            for w in wals
        )
        manager.close()

    def test_checkpoint_skipped_while_transaction_open(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path)
        engine.execute("BEGIN")
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        assert manager.checkpoint() is None
        engine.execute("COMMIT")
        assert manager.checkpoint() is not None
        manager.close()

    def test_close_collapses_chain_to_single_checkpoint(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path)
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        manager.close()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert len([n for n in names if n.startswith("checkpoint-")]) == 1
        # Graceful shutdown leaves nothing to replay.
        fresh = Engine(Database())
        manager2 = _manager(fresh, tmp_path)
        assert manager2.last_recovery.replayed == 0
        assert _rows(fresh) == _rows(engine)
        manager2.close()

    def test_stats_expose_durability_counters(self, tmp_path):
        engine = _engine()
        manager = _manager(engine, tmp_path, checkpoint_every=100)
        engine.execute("INSERT INTO items VALUES (10, 'ten', 100)")
        stats = manager.stats()
        assert stats["wal_records"] == 1
        assert stats["records_since_checkpoint"] == 1
        assert stats["checkpoint_every"] == 100
        assert stats["data_dir"] == str(tmp_path)
        manager.close()
