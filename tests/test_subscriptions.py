"""Standing subscriptions: zero idle cost, push-on-commit, streaming.

The contract under test (docs/streaming.md): a subscription parses its
question once, stamps the plan with the tables it reads, and is
re-evaluated *only* when a committed write touches one of them — an
idle subscription costs nothing per unrelated commit.  Pushed answers
are evaluated against a pinned MVCC snapshot (never torn) and
deduplicated by content, so a rollback that restores the old rows
pushes nothing.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.core.config import NliConfig
from repro.datasets import fleet
from repro.server import serve_in_thread
from repro.service import NliService
from repro.service.subscriptions import SubscriptionFailed

SHIP_INSERT = (
    "insert into ship (id, name, type_id, fleet_id, home_port_id, "
    "commander_id, displacement, length, speed, commissioned, crew) "
    "values ({id}, 'sub-{id}', 1, 2, 6, 1, 1000, 100, 30, 2000, 100)"
)
PORT_INSERT = "insert into port (id, name, country) values ({id}, 'p{id}', 'x')"


@pytest.fixture()
def service():
    svc = NliService(fleet.build_database(), domain=fleet.domain())
    yield svc
    svc.close()


def _drain_initial(subscription):
    frame = subscription.next_frame(timeout=5.0)
    assert frame is not None and frame["type"] == "answer"
    assert frame["seq"] == 0
    return frame


class TestIdleCost:
    def test_storm_on_unrelated_table_evaluates_nothing(self, service):
        """The headline invariant: 1 000 committed writes to tables the
        question never reads leave the subscription's evaluation counter
        exactly where registration put it."""
        subscription = service.subscribe("how many ships are there")
        _drain_initial(subscription)
        assert subscription.tables == {"ship"}
        assert subscription.stats["evaluations"] == 1  # the registration

        for i in range(1000):
            service.execute(PORT_INSERT.format(id=20000 + i))

        # Commits are processed synchronously at the commit point (the
        # relevance check), evaluation asynchronously — but irrelevant
        # commits never reach the evaluator at all.
        assert subscription.stats["evaluations"] == 1
        assert subscription.next_frame(timeout=0.2) is None
        stats = service.stats
        assert stats["subscription_irrelevant_commits"] >= 1000
        assert stats["subscription_evaluations"] == 1

    def test_relevant_commit_evaluates_and_pushes(self, service):
        subscription = service.subscribe("how many ships are there")
        first = _drain_initial(subscription)
        before = first["envelope"]["answer"]["rows"][0][0]

        service.execute(SHIP_INSERT.format(id=9001))

        frame = subscription.next_frame(timeout=5.0)
        assert frame is not None and frame["type"] == "answer"
        assert frame["seq"] == 1
        assert frame["envelope"]["answer"]["rows"][0][0] == before + 1
        assert frame["stamp"] != first["stamp"]


class TestPushSemantics:
    def test_rollback_pushes_nothing(self, service):
        """A transaction that touches the subscribed table but rolls
        back restores the original rows; the content-dedupe check
        swallows the identical re-evaluation."""
        subscription = service.subscribe("how many ships are there")
        _drain_initial(subscription)

        service.execute("BEGIN")
        service.execute(SHIP_INSERT.format(id=9002))
        service.execute("ROLLBACK")

        assert subscription.next_frame(timeout=1.0) is None
        assert subscription.stats["pushes"] == 1  # the initial answer only

    def test_transaction_commits_push_once(self, service):
        subscription = service.subscribe("how many ships are there")
        first = _drain_initial(subscription)
        before = first["envelope"]["answer"]["rows"][0][0]

        service.execute("BEGIN")
        service.execute(SHIP_INSERT.format(id=9003))
        service.execute(SHIP_INSERT.format(id=9004))
        service.execute("COMMIT")

        frame = subscription.next_frame(timeout=5.0)
        assert frame is not None and frame["type"] == "answer"
        assert frame["envelope"]["answer"]["rows"][0][0] == before + 2
        # One commit, one evaluation, one frame — not one per statement.
        assert subscription.next_frame(timeout=0.5) is None
        assert subscription.stats["pushes"] == 2

    def test_unsubscribe_delivers_closed_sentinel(self, service):
        subscription = service.subscribe("how many ships are there")
        _drain_initial(subscription)
        service.unsubscribe(subscription.id)
        frame = subscription.next_frame(timeout=5.0)
        assert frame is not None and frame["type"] == "closed"
        assert service.subscriptions.active() == []

    def test_unanswerable_question_raises_with_envelope(self, service):
        with pytest.raises(SubscriptionFailed) as info:
            service.subscribe("colorless green ideas sleep furiously")
        assert info.value.response.answer is None
        assert not info.value.response.ok

    def test_stats_surface_in_service_stats(self, service):
        subscription = service.subscribe("how many ships are there")
        _drain_initial(subscription)
        stats = service.stats
        assert stats["subscriptions_active"] == 1
        assert stats["subscriptions_opened"] == 1
        _ = subscription


class TestHttpStreaming:
    @pytest.fixture(scope="class")
    def service(self):
        svc = NliService(
            fleet.build_database(),
            domain=fleet.domain(),
            config=NliConfig(),
        )
        yield svc
        svc.close()

    @pytest.fixture(scope="class")
    def server(self, service):
        handle = serve_in_thread(service)
        yield handle
        handle.stop()

    def _open_stream(self, server, query: str):
        host = server.url.split("//", 1)[1]
        connection = http.client.HTTPConnection(host, timeout=30)
        connection.request("GET", "/v1/subscribe?" + query)
        response = connection.getresponse()
        return connection, response

    @staticmethod
    def _next_non_heartbeat(response):
        while True:
            frame = json.loads(response.readline())
            if frame.get("type") != "heartbeat":
                return frame

    def test_stream_pushes_answer_frames_on_commit(self, server, service):
        # A short heartbeat doubles as the disconnect detector: a dead
        # client is noticed at the next failed write, so teardown lag is
        # bounded by the heartbeat interval.
        connection, response = self._open_stream(
            server, "question=how%20many%20ships%20are%20there&heartbeat=0.1"
        )
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        hello = json.loads(response.readline())
        assert hello["type"] == "subscribed"
        assert hello["tables"] == ["ship"]
        first = self._next_non_heartbeat(response)
        assert first["type"] == "answer" and first["seq"] == 0
        before = first["envelope"]["answer"]["rows"][0][0]

        service.execute(SHIP_INSERT.format(id=9100))

        frame = self._next_non_heartbeat(response)
        assert frame["type"] == "answer" and frame["seq"] == 1
        assert frame["envelope"]["answer"]["rows"][0][0] == before + 1
        # Both halves: HTTPResponse holds its own reference to the
        # socket, so the FIN only goes out once it is closed too.
        response.close()
        connection.close()
        # Client disconnect tears the subscription down server-side
        # within a heartbeat or two.
        deadline = time.monotonic() + 5
        while service.subscriptions.active() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert service.subscriptions.active() == []

    def test_frames_limit_closes_the_stream(self, server):
        connection, response = self._open_stream(
            server,
            "question=how%20many%20ports%20are%20there&heartbeat=60&frames=1",
        )
        hello = json.loads(response.readline())
        assert hello["type"] == "subscribed"
        first = json.loads(response.readline())
        assert first["type"] == "answer"
        assert response.readline() == b""  # terminating chunk: stream over
        connection.close()

    def test_heartbeats_flow_while_idle(self, server):
        connection, response = self._open_stream(
            server,
            "question=how%20many%20ships%20are%20there&heartbeat=0.05",
        )
        json.loads(response.readline())  # hello
        json.loads(response.readline())  # initial answer
        frame = json.loads(response.readline())
        assert frame["type"] == "heartbeat"
        connection.close()

    def test_bare_subscribe_path_is_v1_only(self, server):
        host = server.url.split("//", 1)[1]
        connection = http.client.HTTPConnection(host, timeout=10)
        connection.request("GET", "/subscribe?question=x")
        response = connection.getresponse()
        body = json.loads(response.read())
        assert response.status == 404
        assert body["error"]["code"] == "unknown_endpoint"
        connection.close()

    def test_missing_question_is_rejected(self, server):
        connection, response = self._open_stream(server, "heartbeat=60")
        body = json.loads(response.read())
        assert response.status == 400
        assert body["error"]["code"] == "bad_field"
        connection.close()
