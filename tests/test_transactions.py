"""Multi-statement transactions: BEGIN/COMMIT/ROLLBACK at every layer.

The contract under test (see docs/storage.md):

* the parser accepts all the spellings (``BEGIN [TRANSACTION|WORK]``,
  ``COMMIT``, ``ROLLBACK``) and ``EXPLAIN SELECT`` as real statements;
* while a transaction is open, every ``Database.snapshot()`` — and so
  every concurrent reader, SELECT or NLI ask — sees the committed
  pre-transaction state, while the transaction's own statements see
  their own writes;
* ROLLBACK restores rows, secondary indexes, primary-key lookups,
  statistics and foreign-key enforcement exactly as they were, and
  tables created inside the transaction vanish;
* nested BEGIN and stray COMMIT/ROLLBACK raise
  :class:`~repro.errors.TransactionError`;
* no snapshot pins leak once the transaction and its readers are done;
* ``Engine.explain`` pins a snapshot instead of taking the commit lock,
  so EXPLAIN never blocks behind an open transaction holding it.
"""

from __future__ import annotations

import gc
import threading

import pytest

from repro.core.config import NliConfig
from repro.datasets import fleet
from repro.errors import IntegrityError, SqlSyntaxError, TransactionError
from repro.service.service import NliService
from repro.sqlengine import Database, Engine, parse_sql
from repro.sqlengine import ast_nodes as ast

SHIP_INSERT = (
    "INSERT INTO ship (id, name, type_id, fleet_id, home_port_id, "
    "commander_id, displacement, length, speed, commissioned, crew) "
    "VALUES ({id}, '{name}', 1, 1, 1, 1, 9000, 500, 30, 2001, 100)"
)


def _engine() -> Engine:
    engine = Engine(Database())
    engine.execute(
        "CREATE TABLE parent (id INT PRIMARY KEY, name TEXT)"
    )
    engine.execute(
        "CREATE TABLE child (id INT PRIMARY KEY, "
        "parent_id INT REFERENCES parent(id), v INT)"
    )
    for i in range(10):
        engine.execute(f"INSERT INTO parent VALUES ({i}, 'p{i}')")
        engine.execute(f"INSERT INTO child VALUES ({i}, {i}, {i * 10})")
    engine.database.table("child").create_hash_index("v")
    return engine


class TestParser:
    @pytest.mark.parametrize(
        "sql, node",
        [
            ("BEGIN", ast.BeginTransaction),
            ("BEGIN TRANSACTION", ast.BeginTransaction),
            ("begin work", ast.BeginTransaction),
            ("COMMIT", ast.CommitTransaction),
            ("COMMIT TRANSACTION;", ast.CommitTransaction),
            ("ROLLBACK", ast.RollbackTransaction),
            ("rollback work", ast.RollbackTransaction),
        ],
    )
    def test_transaction_statements_parse(self, sql, node):
        assert isinstance(parse_sql(sql), node)

    def test_explain_parses_to_wrapped_select(self):
        stmt = parse_sql("EXPLAIN SELECT id FROM t WHERE id = 1")
        assert isinstance(stmt, ast.Explain)
        assert isinstance(stmt.query, ast.Select)
        assert stmt.render() == "EXPLAIN SELECT id FROM t WHERE (id = 1)"

    def test_render_roundtrip(self):
        for sql in ("BEGIN", "COMMIT", "ROLLBACK"):
            assert parse_sql(parse_sql(sql).render()).render() == sql

    def test_explain_requires_select(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("EXPLAIN INSERT INTO t (a) VALUES (1)")


class TestEngineTransactions:
    def test_commit_persists(self):
        engine = _engine()
        engine.execute("BEGIN")
        engine.execute("INSERT INTO parent VALUES (100, 'new')")
        engine.execute("UPDATE child SET v = v + 1 WHERE id = 0")
        status = engine.execute("COMMIT")
        assert status.rows == [("COMMIT",)]
        assert engine.execute("SELECT COUNT(*) FROM parent").scalar() == 11
        assert (
            engine.execute("SELECT v FROM child WHERE id = 0").scalar() == 1
        )

    def test_rollback_restores_rows_indexes_and_statistics(self):
        engine = _engine()
        db = engine.database
        before_stats = db.table("child").statistics.column("v")
        before_distinct = before_stats.distinct
        engine.execute("BEGIN")
        engine.execute("DELETE FROM child WHERE v >= 50")
        engine.execute("UPDATE child SET v = 999 WHERE id = 1")
        engine.execute("INSERT INTO parent VALUES (100, 'new')")
        engine.execute("ROLLBACK")
        child = db.table("child")
        assert engine.execute("SELECT COUNT(*) FROM child").scalar() == 10
        assert engine.execute("SELECT COUNT(*) FROM parent").scalar() == 10
        # Hash index restored (lookups agree with a full scan).
        assert (
            engine.execute("SELECT id FROM child WHERE v = 10").scalar() == 1
        )
        # PK uniqueness enforcement restored (the rolled-back state's
        # keys are occupied again, via the restored PK index).
        with pytest.raises(IntegrityError):
            engine.execute("INSERT INTO child VALUES (5, 5, 500)")
        # Statistics restored (the optimizer's selectivity inputs).
        stats = child.statistics.column("v")
        assert stats.distinct == before_distinct
        assert stats.frequency(999) == 0
        assert stats.max_value == 90

    def test_rollback_restores_foreign_key_enforcement(self):
        engine = _engine()
        engine.execute("BEGIN")
        engine.execute("INSERT INTO parent VALUES (100, 'new')")
        engine.execute("INSERT INTO child VALUES (100, 100, 1000)")
        engine.execute("ROLLBACK")
        # The rolled-back parent row must not satisfy an FK any more...
        with pytest.raises(IntegrityError):
            engine.execute("INSERT INTO child VALUES (101, 100, 1010)")
        # ...while surviving parents still do.
        engine.execute("INSERT INTO child VALUES (101, 5, 1010)")

    def test_create_table_in_transaction_rolls_back(self):
        engine = _engine()
        engine.execute("BEGIN")
        engine.execute("CREATE TABLE scratch (id INT PRIMARY KEY)")
        engine.execute("INSERT INTO scratch VALUES (1)")
        engine.execute("ROLLBACK")
        assert not engine.database.has_table("scratch")

    def test_nested_begin_and_stray_commit_rollback(self):
        engine = _engine()
        with pytest.raises(TransactionError):
            engine.execute("COMMIT")
        with pytest.raises(TransactionError):
            engine.execute("ROLLBACK")
        engine.execute("BEGIN")
        with pytest.raises(TransactionError):
            engine.execute("BEGIN")
        # The original transaction is still usable after the failed BEGIN.
        engine.execute("INSERT INTO parent VALUES (100, 'new')")
        engine.execute("COMMIT")
        assert engine.execute("SELECT COUNT(*) FROM parent").scalar() == 11

    def test_readers_see_pre_transaction_state(self):
        engine = _engine()
        db = engine.database
        engine.execute("BEGIN")
        engine.execute("INSERT INTO parent VALUES (100, 'new')")
        engine.execute("DELETE FROM child WHERE id = 0")
        # Any snapshot pinned during the transaction is the committed cut.
        with db.snapshot() as snap:
            assert len(snap.table("parent")) == 10
            assert len(snap.table("child")) == 10
        # Pinned SELECTs (how the service reads) agree.
        with db.snapshot() as snap:
            count = engine.execute(
                "SELECT COUNT(*) FROM parent", snapshot=snap
            ).scalar()
        assert count == 10
        # The transaction itself reads its own writes from live storage.
        assert engine.execute("SELECT COUNT(*) FROM parent").scalar() == 11
        engine.execute("COMMIT")
        with db.snapshot() as snap:
            assert len(snap.table("parent")) == 11

    def test_plan_cache_entries_valid_again_after_rollback(self):
        engine = _engine()
        sql = "SELECT COUNT(*) FROM child WHERE v < 50"
        assert engine.execute(sql).scalar() == 5
        hits_before = engine.plan_cache.stats["result_hits"]
        engine.execute("BEGIN")
        engine.execute("DELETE FROM child WHERE v < 50")
        engine.execute("ROLLBACK")
        # ROLLBACK restored the table's version stamp with its bytes, so
        # the pre-transaction materialized result is served again.
        assert engine.execute(sql).scalar() == 5
        assert engine.plan_cache.stats["result_hits"] == hits_before + 1

    def test_no_leaked_pins(self):
        engine = _engine()
        db = engine.database
        engine.execute("BEGIN")
        engine.execute("INSERT INTO parent VALUES (100, 'new')")
        with db.snapshot():
            pass
        engine.execute("COMMIT")
        engine.execute("BEGIN")
        engine.execute("DELETE FROM parent WHERE id = 100")
        engine.execute("ROLLBACK")
        gc.collect()
        assert db.snapshot_pins == 0


class TestEngineExplain:
    def test_explain_statement_returns_plan_rows(self):
        engine = _engine()
        result = engine.execute("EXPLAIN SELECT v FROM child WHERE v = 10")
        assert result.columns == ["plan"]
        plan = "\n".join(row[0] for row in result.rows)
        assert "child" in plan

    def test_explain_matches_explain_method(self):
        engine = _engine()
        sql = "SELECT v FROM child WHERE v = 10"
        described = engine.explain(sql)
        rows = engine.execute(f"EXPLAIN {sql}").rows
        assert "\n".join(row[0] for row in rows) == described

    def test_explain_does_not_block_behind_open_transaction(self):
        """EXPLAIN pins a snapshot; it must finish while a transaction
        holds the commit point (pre-refactor it took the write lock and
        would deadlock/queue here)."""
        engine = _engine()
        engine.execute("BEGIN")
        engine.execute("INSERT INTO parent VALUES (100, 'new')")
        done = threading.Event()
        plans: list[str] = []

        def explain() -> None:
            plans.append(engine.explain("SELECT v FROM child WHERE v = 10"))
            done.set()

        thread = threading.Thread(target=explain)
        thread.start()
        assert done.wait(timeout=5.0), "EXPLAIN blocked behind the transaction"
        thread.join()
        assert "child" in plans[0]
        engine.execute("ROLLBACK")


class TestServiceTransactions:
    def _service(self, **cfg) -> NliService:
        return NliService(
            fleet.build_database(),
            domain=fleet.domain(),
            config=NliConfig(**cfg) if cfg else None,
        )

    def test_asks_during_transaction_see_committed_state(self):
        service = self._service()
        base = service.ask("how many ships are there").answer.result.scalar()
        service.execute("BEGIN")
        stamp = service.data_stamp()
        service.execute(SHIP_INSERT.format(id=901, name="walrus"))
        # Concurrent reads — NLI and SQL alike — keep the committed view,
        # and the committed data identity (cache key) does not move.
        assert (
            service.ask("how many ships are there").answer.result.scalar()
            == base
        )
        assert service.data_stamp() == stamp
        # The transaction's own SELECT reads its own write.
        assert (
            service.execute("SELECT COUNT(*) FROM ship").scalar() == base + 1
        )
        service.execute("COMMIT")
        assert (
            service.ask("how many ships are there").answer.result.scalar()
            == base + 1
        )
        assert service.data_stamp() != stamp
        service.close()

    def test_rollback_then_ask_reflects_restored_state(self):
        service = self._service()
        base = service.ask("how many ships are there").answer.result.scalar()
        service.execute("BEGIN")
        service.execute("DELETE FROM ship WHERE speed > 0")
        service.execute("ROLLBACK")
        assert (
            service.ask("how many ships are there").answer.result.scalar()
            == base
        )
        service.close()

    def test_stray_commit_raises_through_service(self):
        service = self._service()
        with pytest.raises(TransactionError):
            service.execute("COMMIT")
        service.close()

    def test_concurrent_askers_during_open_transaction(self):
        service = self._service()
        base = service.ask("how many ships are there").answer.result.scalar()
        service.execute("BEGIN")
        service.execute(SHIP_INSERT.format(id=902, name="narwhal"))
        counts: list[int] = []
        errors: list[BaseException] = []

        def asker() -> None:
            try:
                response = service.ask("how many ships are there")
                counts.append(response.answer.result.scalar())
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=asker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors
        assert counts == [base] * 4, "a reader saw uncommitted state"
        service.execute("COMMIT")
        assert (
            service.ask("how many ships are there").answer.result.scalar()
            == base + 1
        )
        gc.collect()
        assert service.database.snapshot_pins == 0
        service.close()

    def test_explain_via_service_is_lock_free_during_transaction(self):
        service = self._service()
        service.execute("BEGIN")
        service.execute(SHIP_INSERT.format(id=903, name="kraken"))
        done = threading.Event()
        results: list[list] = []

        def reader() -> None:
            results.append(
                service.execute("EXPLAIN SELECT name FROM ship").rows
            )
            done.set()

        thread = threading.Thread(target=reader)
        thread.start()
        assert done.wait(timeout=5.0), "EXPLAIN queued behind the transaction"
        thread.join()
        assert results[0]
        service.execute("ROLLBACK")
        service.close()

    def test_legacy_lock_mode_supports_transactions(self):
        service = self._service(mvcc_reads=False)
        base = service.execute("SELECT COUNT(*) FROM ship").scalar()
        service.execute("BEGIN")
        service.execute(SHIP_INSERT.format(id=904, name="mako"))
        service.execute("ROLLBACK")
        assert service.execute("SELECT COUNT(*) FROM ship").scalar() == base
        service.close()
