"""Per-table versioning + incremental value-index/lexicon maintenance.

Covers the dependency-aware invalidation chain end to end:

* ``Table.version`` stamps move independently per table;
* the plan cache keeps entries for table B valid across writes to table A;
* the NLI absorbs interleaved DML through row-level deltas — a freshly
  inserted value resolves immediately with *no* full rebuild, and a
  deleted value stops resolving.
"""

from __future__ import annotations


from repro.core import NaturalLanguageInterface
from repro.datasets import fleet

from repro.sqlengine import Database, Engine
from repro.sqlengine.table import TableDelta
from repro.valueindex import ValueIndex

from tests.conftest import make_library_db


class TestTableVersions:
    def test_each_mutation_bumps_only_its_table(self):
        db = make_library_db()
        before = db.table_versions()
        db.insert("author", (9, "New Author", "usa", 1980))
        after = db.table_versions()
        assert after["author"] > before["author"]
        assert after["book"] == before["book"]
        assert after["loan"] == before["loan"]

    def test_update_delete_and_index_ddl_bump(self):
        db = make_library_db()
        engine = Engine(db)
        v0 = db.table_version("book")
        engine.execute("UPDATE book SET pages = 100 WHERE id = 1")
        v1 = db.table_version("book")
        assert v1 > v0
        engine.execute("DELETE FROM book WHERE id = 6")
        v2 = db.table_version("book")
        assert v2 > v1
        db.table("book").create_hash_index("year")
        assert db.table_version("book") > v2

    def test_stamps_unique_across_drop_and_recreate(self):
        db = make_library_db()
        loan_stamp = db.table_version("loan")
        schema = db.table("loan").schema
        db.drop_table("loan")
        assert db.table_version("loan") is None
        recreated = db.create_table(schema)
        # Fresh stamps come from the database-wide clock, so the new table
        # can never echo a stamp the old incarnation already handed out.
        assert recreated.version > loan_stamp

    def test_global_version_still_summarises(self):
        db = make_library_db()
        before = db.version
        db.insert("loan", (9, 1, "lovelace", False))
        assert db.version > before

    def test_standalone_table_counts_locally(self):
        from repro.sqlengine import Column, SqlType, TableSchema
        from repro.sqlengine.table import Table

        table = Table(TableSchema("t", [Column("a", SqlType.INT)]))
        v0 = table.version
        table.insert((1,))
        assert table.version > v0


class TestPlanCacheIsolation:
    def test_write_to_a_keeps_b_results_cached(self):
        engine = Engine(make_library_db())
        books = "SELECT COUNT(*) FROM book"
        engine.execute(books)
        engine.execute(books)
        assert engine.plan_cache.stats["result_hits"] == 1
        # Write to an unrelated table...
        engine.execute("INSERT INTO author VALUES (9, 'New Author', 'usa', 1980)")
        # ...and the cached result for `book` is still served.
        assert engine.execute(books).scalar() == 6
        assert engine.plan_cache.stats["result_hits"] == 2

    def test_write_to_a_invalidates_a(self):
        engine = Engine(make_library_db())
        authors = "SELECT COUNT(*) FROM author"
        assert engine.execute(authors).scalar() == 4
        engine.execute("INSERT INTO author VALUES (9, 'New Author', 'usa', 1980)")
        assert engine.execute(authors).scalar() == 5

    def test_join_invalidated_by_either_side(self):
        engine = Engine(make_library_db())
        join = (
            "SELECT COUNT(*) FROM book JOIN author ON book.author_id = author.id"
        )
        assert engine.execute(join).scalar() == 6
        engine.execute("DELETE FROM book WHERE id = 6")
        assert engine.execute(join).scalar() == 5
        engine.execute(
            "INSERT INTO author VALUES (9, 'New Author', 'usa', 1980)"
        )
        engine.execute(
            "INSERT INTO book VALUES (9, 'Fresh', 9, 2001, 100, 5.0)"
        )
        assert engine.execute(join).scalar() == 6

    def test_result_grown_past_cap_drops_stale_copy(self):
        from repro.sqlengine import Database, Column, SqlType, TableSchema

        db = Database()
        db.create_table(TableSchema("t", [Column("id", SqlType.INT)]))
        for i in range(3):
            db.insert("t", (i,))
        engine = Engine(db, max_cached_result_rows=3)
        sql = "SELECT id FROM t"
        engine.execute(sql)
        cache = engine.plan_cache
        assert cache.result(sql, db.table_version) is not None
        db.insert("t", (3,))  # next result (4 rows) exceeds the cap
        engine.execute(sql)
        # The stale 3-row copy must be gone, not pinned under dead stamps.
        entry = cache._entries.get(sql)
        assert entry is not None and entry.rows is None

    def test_subquery_dependencies_invalidate_result(self):
        engine = Engine(make_library_db())
        sql = (
            "SELECT name FROM author WHERE id IN "
            "(SELECT author_id FROM book WHERE year > 1975)"
        )
        assert engine.execute(sql).rows == [("Octavia Butler",)]
        # The outer table did not change — but the subquery's table did.
        engine.execute("INSERT INTO book VALUES (9, 'Late', 2, 1981, 50, 1.0)")
        assert sorted(engine.execute(sql).rows) == [
            ("Octavia Butler",),
            ("Stanislaw Lem",),
        ]


class TestDeltaEmission:
    def test_insert_emits_text_values(self):
        db = make_library_db()
        seen: list[TableDelta] = []
        db.add_delta_listener(seen.append)
        db.insert("author", (9, "Joanna Russ", "usa", 1937))
        assert len(seen) == 1
        assert seen[0].table == "author"
        assert ("name", "Joanna Russ") in seen[0].added
        assert ("country", "usa") in seen[0].added
        assert seen[0].removed == ()

    def test_update_emits_both_sides(self):
        db = make_library_db()
        engine = Engine(db)
        seen: list[TableDelta] = []
        db.add_delta_listener(seen.append)
        engine.execute("UPDATE author SET name = 'S. Lem' WHERE id = 2")
        assert any(
            ("name", "Stanislaw Lem") in d.removed and ("name", "S. Lem") in d.added
            for d in seen
        )

    def test_index_ddl_emits_valueless_delta(self):
        db = make_library_db()
        seen: list[TableDelta] = []
        db.add_delta_listener(seen.append)
        db.table("book").create_hash_index("year")
        assert seen and seen[0].kind == "ddl"
        assert seen[0].added == () and seen[0].removed == ()

    def test_listener_sees_post_mutation_version(self):
        # The mutated table's stamp must advance before listeners run, or
        # a listener querying through the plan cache would be served the
        # pre-mutation materialized result under the stale stamp.
        db = make_library_db()
        engine = Engine(db)
        count = "SELECT COUNT(*) FROM author"
        assert engine.execute(count).scalar() == 4
        observed: list[int] = []

        def listener(delta: TableDelta) -> None:
            if delta.table == "author":
                observed.append(engine.execute(count).scalar())

        db.add_delta_listener(listener)
        db.insert("author", (9, "Joanna Russ", "usa", 1937))
        assert observed == [5]

    def test_listener_added_during_dispatch_is_kept(self):
        db = make_library_db()
        late: list[TableDelta] = []

        def first(delta: TableDelta) -> None:
            if not late_registered:
                late_registered.append(True)
                db.add_delta_listener(late.append)

        late_registered: list[bool] = []
        db.add_delta_listener(first)
        db.insert("author", (9, "Joanna Russ", "usa", 1937))
        assert late == []  # subscribed mid-broadcast, not retroactively fed
        db.insert("author", (10, "James Tiptree", "usa", 1915))
        assert len(late) == 1  # ...but it does receive the next delta

    def test_mixed_case_categorical_spec_still_matches_deltas(self):
        from repro.lexicon.builder import data_dependent_columns
        from repro.lexicon.domain import CategoricalEntitySpec, DomainModel

        domain = DomainModel(
            "library",
            categorical_entities=[
                CategoricalEntitySpec("book", "Author", "Name"),
            ],
        )
        assert data_dependent_columns(domain) == {("author", "name")}


class TestValueIndexIncremental:
    def test_apply_delta_adds_and_removes(self):
        db = make_library_db()
        index = ValueIndex(db)
        assert index.lookup(["joanna", "russ"]) == []
        index.apply_delta(
            TableDelta("author", added=(("name", "Joanna Russ"),))
        )
        hits = index.lookup(["joanna", "russ"])
        assert [(h.table, h.column, h.value) for h in hits] == [
            ("author", "name", "Joanna Russ")
        ]
        index.apply_delta(
            TableDelta("author", removed=(("name", "Joanna Russ"),))
        )
        assert index.lookup(["joanna", "russ"]) == []

    def test_duplicate_values_are_reference_counted(self):
        db = make_library_db()
        index = ValueIndex(db)
        # 'ada' appears on two loan rows; removing one keeps the phrase.
        index.apply_delta(TableDelta("loan", removed=(("member", "ada"),)))
        assert index.lookup(["ada"])
        index.apply_delta(TableDelta("loan", removed=(("member", "ada"),)))
        assert index.lookup(["ada"]) == []

    def test_removed_word_leaves_spelling_vocabulary(self):
        db = make_library_db()
        index = ValueIndex(db)
        index.apply_delta(TableDelta("author", added=(("name", "Zelazny"),)))
        assert index.contains_word("zelazny")
        index.apply_delta(TableDelta("author", removed=(("name", "Zelazny"),)))
        assert not index.contains_word("zelazny")

    def test_cap_applies_to_incremental_adds(self):
        db = make_library_db()
        index = ValueIndex(db, max_values_per_column=2)
        before = index.stats()["phrases"]
        index.apply_delta(
            TableDelta("author", added=(("name", "Beyond The Cap"),))
        )
        assert index.stats()["phrases"] == before
        assert index.lookup(["beyond", "the", "cap"]) == []

    def test_cap_rejected_duplicate_cannot_steal_refcount(self):
        # A duplicate of an *admitted* value must count even at the cap:
        # otherwise inserting then deleting a row holding that value would
        # unindex it while the original row is still live.
        db = make_library_db()
        index = ValueIndex(db, max_values_per_column=2)
        assert index.lookup(["ursula", "le", "guin"])
        index.apply_delta(
            TableDelta("author", added=(("name", "Ursula Le Guin"),))
        )
        index.apply_delta(
            TableDelta("author", removed=(("name", "Ursula Le Guin"),))
        )
        assert index.lookup(["ursula", "le", "guin"])


class TestInterleavedAsk:
    """Insert -> ask -> delete -> ask, with no full rebuild in between."""

    def _fresh_nli(self) -> NaturalLanguageInterface:
        return NaturalLanguageInterface(
            fleet.build_database(), domain=fleet.domain()
        )

    def test_inserted_value_resolves_then_deleted_value_stops(self):
        nli = self._fresh_nli()
        nli.engine.execute(
            "INSERT INTO fleet VALUES (8, 'Antarctic', 'Southern', 'McMurdo')"
        )
        answer = nli.ask("how many ships are in the antarctic fleet").answer
        assert answer.result.scalar() == 0
        assert "Antarctic" in answer.sql
        assert nli.stats["full_rebuilds"] == 1  # constructor only
        nli.engine.execute("DELETE FROM fleet WHERE name = 'Antarctic'")
        assert not nli.ask("how many ships are in the antarctic fleet").ok
        assert nli.stats["full_rebuilds"] == 1

    def test_catalog_ddl_still_forces_full_rebuild(self):
        nli = self._fresh_nli()
        nli.engine.execute("CREATE TABLE squadron (id INT PRIMARY KEY, name TEXT)")
        nli.ask("how many ships are there")
        assert nli.stats["full_rebuilds"] == 2

    def test_bulk_load_falls_back_to_full_rebuild(self):
        from repro.core import NliConfig

        nli = NaturalLanguageInterface(
            fleet.build_database(),
            domain=fleet.domain(),
            config=NliConfig(max_pending_deltas=3),
        )
        for i in range(5):
            nli.database.insert("port", (90 + i, f"Newport {i}", "usa"))
        nli.ask("how many ships are there")
        assert nli.stats["full_rebuilds"] == 2
        assert nli.stats["delta_refreshes"] == 0

    def test_numeric_only_dml_keeps_prepared_cache(self):
        # Valueless deltas (no TEXT change) must not flush cached parses.
        nli = self._fresh_nli()
        nli.ask("how many ships are there")
        assert len(nli._prepared) > 0
        nli.engine.execute("UPDATE ship SET crew = crew + 1 WHERE id = 1")
        nli.ask("how many ships are there")
        assert nli.stats["delta_refreshes"] == 0
        assert len(nli._prepared) > 0

    def test_categorical_lexicon_follows_data(self):
        nli = self._fresh_nli()
        before = nli.ask("how many submarines are there").answer.result.scalar()
        # shiptype.name feeds categorical entity nouns; inserting a new
        # type must re-derive them without a full rebuild.
        nli.engine.execute(
            "INSERT INTO shiptype VALUES (9, 'corvette', 'surface')"
        )
        assert nli.ask("how many corvettes are there").answer.result.scalar() == 0
        assert nli.stats["full_rebuilds"] == 1
        assert (
            nli.ask("how many submarines are there").answer.result.scalar() == before
        )
